#include "tomur/profiler.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/strutil.hh"
#include "common/telemetry.hh"
#include "common/threadpool.hh"
#include "common/trace.hh"
#include "net/packet.hh"

namespace tomur::core {

namespace fw = framework;

namespace {

constexpr double MB = 1024.0 * 1024.0;

/** Tiny traffic profile for the bench NFs themselves (they are not
 *  flow-sensitive; 16 flows keeps their profiling instant). */
traffic::TrafficProfile
benchTraffic(double mtbr = 0.0, std::uint64_t packet_size = 1500)
{
    traffic::TrafficProfile p;
    p.flowCount = 16;
    p.packetSize = packet_size;
    p.mtbr = mtbr;
    return p;
}

/** Counter readings above this are glitched (stuck/saturated): the
 *  simulated NIC tops out around 1e9 events/s. */
constexpr double kCounterCeiling = 1e13;

/** A measured throughput that can enter training data. */
bool
plausibleThroughput(const sim::Measurement &m)
{
    return std::isfinite(m.throughput) && m.throughput > 0.0;
}

/** Counter plausibility: finite and below the saturation ceiling. */
bool
plausibleCounters(const hw::PerfCounters &c)
{
    for (double v : c.toVector()) {
        if (!std::isfinite(v) || v < 0.0 || v > kCounterCeiling)
            return false;
    }
    return true;
}

/**
 * Solo-run with a small bounded retry against measurement faults
 * (dropped/NaN readings). Library profiling has no TrainOptions, so
 * the budget is fixed; on a clean testbed the first attempt always
 * passes and behaviour is unchanged.
 */
sim::Measurement
soloScreened(sim::Testbed &bed, const fw::WorkloadProfile &w,
             bool need_counters = false, int attempts = 4)
{
    sim::Measurement m;
    for (int i = 0; i < attempts; ++i) {
        m = bed.runSolo(w);
        if (plausibleThroughput(m) && m.truthThroughput > 0.0 &&
            (!need_counters || plausibleCounters(m.counters))) {
            return m;
        }
    }
    warnEvent("profiler", "solo-measurement-faulty",
              {{"nf", w.nfName},
               {"attempts", strf("%d", attempts)}});
    return m;
}

} // namespace

BenchLibrary::BenchLibrary(sim::Testbed &testbed,
                           const fw::DeviceSet &devices,
                           const regex::RuleSet &rules)
    : testbed_(testbed), devices_(devices), rules_(rules)
{
    TraceSpan span("profiler.benchlib");
    // Phase 1: enumerate the bench grid (names + configs only).
    const double wss_grid[] = {1, 2, 4, 6, 8, 12, 16, 24, 32, 48};
    const double car_grid[] = {5e6,  10e6, 20e6, 40e6,
                               60e6, 80e6, 100e6};
    const double ipa_grid[] = {2, 16, 48};
    for (double wss : wss_grid) {
        for (double car : car_grid) {
            for (double ipa : ipa_grid) {
                MemBenchEntry e;
                e.config.wssBytes = wss * MB;
                e.config.targetAccessRate = car;
                e.config.instructionsPerAccess = ipa;
                e.config.mode = nfs::MemAccessMode::Random;
                e.level.name = strf("mem-bench(%.0fMB,%.0fM,%.0f)",
                                    wss, car / 1e6, ipa);
                memBenches_.push_back(std::move(e));
            }
        }
    }
    // A stripe of streaming-mode entries widens the behaviour space.
    for (double wss : {4.0, 8.0, 16.0, 32.0}) {
        MemBenchEntry e;
        e.config.wssBytes = wss * MB;
        e.config.targetAccessRate = 40e6;
        e.config.mode = nfs::MemAccessMode::Stream;
        e.level.name = strf("mem-bench-stream(%.0fMB)", wss);
        memBenches_.push_back(std::move(e));
    }

    // Phase 2: profile every bench workload across the pool. Each
    // task owns its NF instance and profileWorkload is deterministic
    // in (config, traffic), so results are independent of scheduling.
    auto workloads =
        parallelMap(memBenches_.size(), [&](std::size_t i) {
            auto nf = nfs::makeMemBench(memBenches_[i].config);
            return fw::profileWorkload(*nf, benchTraffic(), nullptr);
        });
    for (std::size_t i = 0; i < memBenches_.size(); ++i)
        memBenches_[i].workload = std::move(workloads[i]);

    // Phase 3: measure all solo contention levels as one batch —
    // solves fan out in parallel, measurement noise is drawn in
    // entry order, exactly as the old one-at-a-time sweep did.
    std::vector<std::vector<fw::WorkloadProfile>> batch;
    batch.reserve(memBenches_.size());
    for (const auto &e : memBenches_)
        batch.push_back({e.workload});
    auto measured = testbed_.runBatch(batch);

    for (std::size_t i = 0; i < memBenches_.size(); ++i) {
        sim::Measurement m =
            measured[i].empty() ? sim::Measurement{} : measured[i][0];
        if (!(plausibleThroughput(m) && m.truthThroughput > 0.0 &&
              plausibleCounters(m.counters))) {
            // The batched first attempt failed the screen (possible
            // only on a faulted testbed): spend the remaining retry
            // budget one-at-a-time, as the serial sweep would.
            m = soloScreened(testbed_, memBenches_[i].workload, true,
                            3);
        }
        memBenches_[i].level.counters = m.counters;
    }
    span.field("mem_benches",
               static_cast<std::uint64_t>(memBenches_.size()));
    metrics().counter("tomur_profiler_bench_levels_total")
        .inc(memBenches_.size());
}

const BenchLibrary::MemBenchEntry &
BenchLibrary::randomMemBench(Rng &rng) const
{
    return memBenches_[rng.uniformInt(memBenches_.size())];
}

const BenchLibrary::AccelBenchEntry &
BenchLibrary::accelBench(hw::AccelKind kind, double rate, double knob)
{
    auto key = std::make_tuple(static_cast<int>(kind), rate, knob);
    auto it = accelCache_.find(key);
    if (it != accelCache_.end())
        return it->second;

    AccelBenchEntry e;
    e.kind = kind;
    e.requestRate = rate;

    std::unique_ptr<fw::NetworkFunction> nf;
    traffic::TrafficProfile tp;
    if (kind == hw::AccelKind::Regex) {
        nfs::RegexBenchConfig cfg;
        cfg.requestRate = rate;
        nf = nfs::makeRegexBench(devices_, cfg);
        tp = benchTraffic(knob); // knob = bench MTBR
    } else if (kind == hw::AccelKind::Compression) {
        nfs::CompressionBenchConfig cfg;
        cfg.requestRate = rate;
        cfg.requestBytes = knob; // knob = bytes per request
        nf = nfs::makeCompressionBench(devices_, cfg);
        tp = benchTraffic(0.0, 1500);
    } else {
        nfs::CryptoBenchConfig cfg;
        cfg.requestRate = rate;
        cfg.requestBytes = knob; // knob = bytes per request
        nf = nfs::makeCryptoBench(devices_, cfg);
        tp = benchTraffic(0.0, 1500);
    }
    e.workload = fw::profileWorkload(*nf, tp, &rules_);

    // Measure the per-request service time: the closed-loop variant
    // solo is accelerator-bound, so t_b = 1 / throughput.
    fw::WorkloadProfile closed = e.workload;
    closed.pacedRate = 0.0;
    auto solo = soloScreened(testbed_, closed);
    e.serviceTime = solo.truthThroughput > 0.0
        ? 1.0 / solo.truthThroughput
        : 1e-6; // faulted beyond retry: keep a sane placeholder

    // Contention level as competitors see it.
    auto m = soloScreened(testbed_, e.workload, true);
    e.level.name = strf("%s-bench(rate=%.0f,knob=%.0f)",
                        hw::accelName(kind), rate, knob);
    e.level.counters = m.counters;
    auto &ac = e.level.accel[static_cast<int>(kind)];
    ac.used = true;
    ac.queues = 1;
    ac.serviceTime = e.serviceTime;
    ac.offeredRate = rate;
    ac.closedLoop = rate <= 0.0;

    auto [pos, inserted] = accelCache_.emplace(key, std::move(e));
    (void)inserted;
    return pos->second;
}

TomurTrainer::TomurTrainer(BenchLibrary &library) : library_(library)
{
}

fw::WorkloadProfiler &
TomurTrainer::profilerFor(fw::NetworkFunction &nf)
{
    auto it = profilers_.find(nf.name());
    if (it == profilers_.end() || it->second->target() != &nf) {
        it = profilers_
                 .insert_or_assign(
                     nf.name(),
                     std::make_unique<fw::WorkloadProfiler>(
                         nf, &library_.rules()))
                 .first;
    }
    return *it->second;
}

const fw::WorkloadProfile &
TomurTrainer::workloadOf(fw::NetworkFunction &nf,
                         const traffic::TrafficProfile &profile)
{
    auto key = std::make_pair(nf.name(), profile.toVector());
    auto it = workloadCache_.find(key);
    if (it != workloadCache_.end())
        return it->second;
    auto w = profilerFor(nf).profile(profile);
    return workloadCache_.emplace(key, std::move(w)).first->second;
}

void
TomurTrainer::prewarmWorkloads(
    fw::NetworkFunction &nf,
    std::vector<traffic::TrafficProfile> profiles)
{
    // Distinct uncached profiles only, then smallest flow count
    // first (ties keep plan order): the profiling session's warm
    // flow set only ever grows, so the sweep's total warm-up cost is
    // its *largest* flow count, not the sum. Profiling draws no
    // shared randomness, so reordering it cannot shift the
    // measurement-phase noise stream.
    std::map<std::vector<double>, bool> seen;
    std::vector<traffic::TrafficProfile> todo;
    for (auto &p : profiles) {
        auto key = std::make_pair(nf.name(), p.toVector());
        if (workloadCache_.count(key))
            continue;
        if (seen.emplace(p.toVector(), true).second)
            todo.push_back(std::move(p));
    }
    if (todo.empty())
        return;
    std::stable_sort(todo.begin(), todo.end(),
                     [](const traffic::TrafficProfile &a,
                        const traffic::TrafficProfile &b) {
                         return a.flowCount < b.flowCount;
                     });
    TraceSpan span("train.profile");
    span.field("profiles", static_cast<std::uint64_t>(todo.size()));
    for (const auto &p : todo)
        workloadOf(nf, p);
}

const ContentionLevel &
TomurTrainer::contentionOf(fw::NetworkFunction &nf,
                           const traffic::TrafficProfile &profile)
{
    auto key = std::make_pair(nf.name(), profile.toVector());
    auto it = contentionCache_.find(key);
    if (it != contentionCache_.end())
        return it->second;

    const auto &w = workloadOf(nf, profile);
    auto solo = soloScreened(library_.testbed(), w, true);
    if (!plausibleCounters(solo.counters)) {
        // Out of retries and the counters are still glitched: scrub
        // them so downstream feature vectors stay finite, and say so.
        solo.counters = hw::PerfCounters{};
        warnEvent("profiler", "contention-counters-scrubbed",
                  {{"nf", nf.name()}});
    }

    ContentionLevel level;
    level.name = nf.name();
    level.counters = solo.counters;

    for (int k = 0; k < hw::numAccelKinds; ++k) {
        if (!w.accel[k].used)
            continue;
        auto kind = static_cast<hw::AccelKind>(k);
        // Calibrate the per-request time from one equilibrium co-run
        // with the closed-loop bench (Appendix F.2): at equilibrium
        // 1/T = t + t_b/n with the bench's known t_b.
        double knob =
            kind == hw::AccelKind::Regex ? 1600.0 : 16000.0;
        const auto &bench = library_.accelBench(kind, 0.0, knob);
        // Bounded retry: a truncated batch or faulted reading must
        // not leave a NaN service time in the cached level.
        double t = 0.0;
        for (int attempt = 0; attempt < 4; ++attempt) {
            auto ms = library_.testbed().run({w, bench.workload});
            if (ms.empty() || ms[0].truthThroughput <= 0.0)
                continue;
            int n = nf.queueCount(kind);
            t = 1.0 / ms[0].truthThroughput -
                bench.serviceTime / n;
            break;
        }
        t = std::max(t, 1e-9);

        auto &ac = level.accel[k];
        ac.used = true;
        ac.queues = nf.queueCount(kind);
        ac.serviceTime = t;
        ac.offeredRate = solo.truthThroughput;
        // Accelerator-bound NFs keep their queues non-empty at any
        // co-location; others offer their (solo) packet rate. The
        // NF is accelerator-bound when its solo rate approaches the
        // engine's solo stage rate 1/t.
        ac.closedLoop = solo.truthThroughput >= 0.9 / t;
    }
    return contentionCache_.emplace(key, std::move(level))
        .first->second;
}

TomurModel
TomurTrainer::train(fw::NetworkFunction &nf,
                    const traffic::TrafficProfile &defaults,
                    const TrainOptions &opts, TrainReport *report)
{
    TraceSpan train_span("train");
    train_span.field("nf", nf.name());
    train_span.field(
        "strategy",
        opts.sampling == SamplingStrategy::Adaptive ? "adaptive"
        : opts.sampling == SamplingStrategy::Random ? "random"
                                                    : "full");
    metrics().counter("tomur_train_runs_total").inc();

    Rng rng(opts.seed);
    TomurModel model;
    model.nfName_ = nf.name();
    model.memory_ = MemoryModel(opts.memory);
    // Warm-start from the previous run's ensemble for this NF (the
    // supervisor's bounded retrain loop trains the same NF over and
    // over): the regressors' fingerprint contract guarantees the
    // fitted result is byte-identical to a cold fit — reuse only
    // skips work whose inputs did not change.
    if (auto wm = warmMemory_.find(nf.name());
        wm != warmMemory_.end() &&
        wm->second.options() == opts.memory) {
        model.memory_ = wm->second;
    }

    auto &bed = library_.testbed();
    const ScreenOptions &sc = opts.screen;

    // ---- Screened measurement helpers (the outlier-rejection /
    // retry loop). On a fault-free testbed the first attempt always
    // passes every screen, so clean runs are unchanged. ----
    auto noteFault = [&] {
        if (report)
            ++report->faultySamplesDetected;
        metrics().counter("tomur_train_faulty_samples_total").inc();
    };
    auto noteRetry = [&] {
        if (report)
            ++report->retriesUsed;
        metrics().counter("tomur_train_retries_total").inc();
    };
    auto noteAbandoned = [&](const char *stage) {
        if (report)
            ++report->samplesAbandoned;
        metrics().counter("tomur_train_samples_abandoned_total")
            .inc();
        warnEvent("profiler", "sample-abandoned",
                  {{"nf", nf.name()}, {"stage", stage}});
    };

    /** Deploy + measure with plausibility retry; nullopt when the
     *  budget runs out. */
    auto runScreened =
        [&](const std::vector<fw::WorkloadProfile> &deploy,
            const char *stage)
        -> std::optional<std::vector<sim::Measurement>> {
        if (!sc.enabled)
            return bed.run(deploy);
        for (int attempt = 0; attempt <= sc.retryBudget; ++attempt) {
            if (attempt > 0)
                noteRetry();
            auto ms = bed.run(deploy);
            if (ms.size() == deploy.size() &&
                plausibleThroughput(ms[0])) {
                return ms;
            }
            noteFault();
        }
        noteAbandoned(stage);
        return std::nullopt;
    };

    /**
     * Measure one contended damage ratio with the full screen:
     * plausibility + ratio ceiling, plus (optionally) verification
     * by repetition with a median-absolute-deviation test for
     * suspiciously heavy drops. Returns nullopt when the retry
     * budget is exhausted.
     */
    auto measureRatio =
        [&](const std::vector<fw::WorkloadProfile> &deploy,
            double solo) -> std::optional<double> {
        for (int attempt = 0; attempt <= sc.retryBudget; ++attempt) {
            if (attempt > 0)
                noteRetry();
            auto ms = bed.run(deploy);
            if (ms.size() != deploy.size() ||
                !plausibleThroughput(ms[0])) {
                if (sc.enabled) {
                    noteFault();
                    continue;
                }
                return ms.empty() ? 0.0 : ms[0].throughput / solo;
            }
            double r = ms[0].throughput / solo;
            if (!sc.enabled)
                return r;
            if (r > sc.ratioCeiling) {
                // Contention cannot make an NF faster: a ratio this
                // far above 1 is a faulted reading.
                noteFault();
                continue;
            }
            if (sc.verifyBelowRatio <= 0.0 ||
                r >= sc.verifyBelowRatio) {
                return r;
            }
            // Suspiciously heavy drop: verify by repetition. A real
            // heavy contention level reproduces; a low outlier
            // disagrees with its re-measurements and the MAD test
            // flags it, with the median as the robust keeper.
            std::vector<double> reads = {r};
            for (int extra = 0; extra < 2; ++extra) {
                noteRetry();
                auto again = bed.run(deploy);
                if (again.size() == deploy.size() &&
                    plausibleThroughput(again[0])) {
                    double r2 = again[0].throughput / solo;
                    if (r2 <= sc.ratioCeiling)
                        reads.push_back(r2);
                }
            }
            double med = median(reads);
            double spread =
                std::max(mad(reads), 0.01 * std::max(med, 1e-12));
            for (double x : reads) {
                if (std::fabs(x - med) > sc.madThreshold * spread) {
                    noteFault(); // a repetition disagreed: faulted
                    break;
                }
            }
            return med;
        }
        noteAbandoned("contended");
        return std::nullopt;
    };

    // ---- Memory model training data ----
    // The memory GBR learns the damage ratio T_contended / T_solo;
    // a separate GBR learns the solo sensitivity curve T_solo(P).
    ml::Dataset data(model.memory_.featureNames());
    ml::Dataset solo_data(
        std::vector<std::string>{"flow_count", "packet_size",
                                 "mtbr"});
    std::map<std::vector<double>, double> solo_cache;

    auto addSolo = [&](const traffic::TrafficProfile &p) {
        auto key = p.toVector();
        auto it = solo_cache.find(key);
        if (it != solo_cache.end())
            return it->second;
        auto ms = runScreened({workloadOf(nf, p)}, "solo");
        double t = ms ? (*ms)[0].throughput : 0.0;
        solo_cache[key] = t;
        if (t > 0.0) {
            solo_data.add(key, t);
            data.add(model.memory_.featuresFor({}, p), 1.0);
        }
        return t;
    };
    /** Contended sample with a pre-chosen competitor set. */
    auto addContendedWith =
        [&](const traffic::TrafficProfile &p,
            const std::vector<const BenchLibrary::MemBenchEntry *>
                &benches) {
            double solo = addSolo(p);
            std::vector<ContentionLevel> levels;
            std::vector<fw::WorkloadProfile> deploy = {
                workloadOf(nf, p)};
            for (const auto *bench : benches) {
                levels.push_back(bench->level);
                deploy.push_back(bench->workload);
            }
            if (solo <= 0.0)
                return; // no usable solo anchor for the ratio label
            auto ratio = measureRatio(deploy, solo);
            if (ratio)
                data.add(model.memory_.featuresFor(levels, p),
                         *ratio);
        };

    /** Draw the competitor set for one contended sample: half the
     *  samples co-run two benches at once so the model sees
     *  aggregated-counter magnitudes (test-time competitor sets sum
     *  up to three NFs' counters). */
    auto drawBenches = [&] {
        std::vector<const BenchLibrary::MemBenchEntry *> benches;
        int n_bench = rng.chance(0.5) ? 1 : 2;
        for (int b = 0; b < n_bench; ++b)
            benches.push_back(&library_.randomMemBench(rng));
        return benches;
    };

    auto addContended = [&](const traffic::TrafficProfile &p) {
        addContendedWith(p, drawBenches());
    };

    /**
     * A pre-planned profiling sweep. Random/Full sampling choose
     * every (traffic, competitor) point up front from the trainer
     * RNG — the plan never depends on measured values — so all
     * deployments are known before the first measurement and their
     * equilibrium solves can fan out across the pool. Execution then
     * replays the plan in order: the noise/fault streams are drawn
     * in exactly the sequence the serial one-at-a-time sweep used,
     * keeping results bit-identical at any TOMUR_THREADS.
     */
    struct PlanStep
    {
        bool contended = false;
        traffic::TrafficProfile profile;
        std::vector<const BenchLibrary::MemBenchEntry *> benches;
    };
    auto executePlan = [&](const std::vector<PlanStep> &plan) {
        // Profile the whole plan first, smallest flow count first:
        // the incremental profiling session then warms each flow
        // exactly once across the sweep. Replay order below is
        // untouched, so the measurement noise stream is too.
        {
            std::vector<traffic::TrafficProfile> profiles;
            profiles.reserve(plan.size());
            for (const auto &step : plan)
                profiles.push_back(step.profile);
            prewarmWorkloads(nf, std::move(profiles));
        }
        std::vector<std::vector<fw::WorkloadProfile>> warm;
        warm.reserve(plan.size());
        for (const auto &step : plan) {
            std::vector<fw::WorkloadProfile> deploy = {
                workloadOf(nf, step.profile)};
            if (step.contended) {
                warm.push_back({deploy[0]}); // the solo anchor
                for (const auto *bench : step.benches)
                    deploy.push_back(bench->workload);
            }
            warm.push_back(std::move(deploy));
        }
        {
            TraceSpan span("train.prewarm");
            span.field("n",
                       static_cast<std::uint64_t>(warm.size()));
            bed.prewarm(warm);
        }
        TraceSpan span("train.measure");
        span.field("n", static_cast<std::uint64_t>(plan.size()));
        for (const auto &step : plan) {
            if (step.contended)
                addContendedWith(step.profile, step.benches);
            else
                addSolo(step.profile);
        }
    };

    if (opts.sampling == SamplingStrategy::Adaptive) {
        // Adaptive sampling interleaves planning and measurement
        // (each measurement decides the next point), so the whole
        // sweep is one measure phase.
        TraceSpan span("train.measure");
        span.field("strategy", "adaptive");
        AdaptiveCallbacks cb;
        cb.solo = addSolo;
        cb.collect = addContended;
        auto res =
            adaptiveProfile(cb, defaults, opts.adaptive);
        if (report)
            report->keptAttributes = res.keptAttributes;
    } else if (opts.sampling == SamplingStrategy::Random) {
        std::size_t budget = opts.adaptive.quota;
        // Same quota as adaptive: a fifth on solo anchors, the rest
        // on uniformly random (traffic, contention) points.
        std::size_t solos = std::max<std::size_t>(4, budget / 5);
        auto randomProfile = [&]() {
            traffic::TrafficProfile p = defaults;
            for (int a = 0; a < traffic::numAttributes; ++a) {
                auto attr = static_cast<traffic::Attribute>(a);
                auto r = traffic::defaultRange(attr);
                p = p.withAttribute(attr,
                                    rng.uniform(r.min, r.max));
            }
            return p;
        };
        std::vector<PlanStep> plan;
        {
            TraceSpan span("train.plan");
            span.field("strategy", "random");
            plan.reserve(budget);
            for (std::size_t i = 0; i < solos; ++i) {
                PlanStep step;
                step.profile = i == 0 ? defaults : randomProfile();
                plan.push_back(std::move(step));
            }
            for (std::size_t i = solos; i < budget; ++i) {
                PlanStep step;
                step.contended = true;
                step.profile = randomProfile();
                step.benches = drawBenches();
                plan.push_back(std::move(step));
            }
            span.field("steps",
                       static_cast<std::uint64_t>(plan.size()));
        }
        executePlan(plan);
    } else {
        // Full profiling: dense grid over every attribute.
        int g = std::max(2, opts.fullGridPerAttribute);
        std::vector<PlanStep> plan;
        std::unique_ptr<TraceSpan> plan_span;
        if (tracer().enabled()) {
            plan_span = std::make_unique<TraceSpan>("train.plan");
            plan_span->field("strategy", "full");
        }
        for (int a = 0; a < g; ++a) {
            for (int b = 0; b < g; ++b) {
                for (int c = 0; c < g; ++c) {
                    traffic::TrafficProfile p = defaults;
                    int idx[3] = {a, b, c};
                    for (int d = 0; d < traffic::numAttributes;
                         ++d) {
                        auto attr =
                            static_cast<traffic::Attribute>(d);
                        auto r = traffic::defaultRange(attr);
                        double v = r.min + (r.max - r.min) *
                                   idx[d] / (g - 1);
                        p = p.withAttribute(attr, v);
                    }
                    PlanStep solo_step;
                    solo_step.profile = p;
                    plan.push_back(std::move(solo_step));
                    for (int i = 0;
                         i < opts.contentionSamplesPerProfile; ++i) {
                        PlanStep step;
                        step.contended = true;
                        step.profile = p;
                        step.benches = drawBenches();
                        plan.push_back(std::move(step));
                    }
                }
            }
        }
        if (plan_span) {
            plan_span->field(
                "steps", static_cast<std::uint64_t>(plan.size()));
            plan_span.reset(); // close before the measure phase
        }
        executePlan(plan);
    }
    if (report)
        report->memorySamples = data.size();
    metrics().counter("tomur_train_samples_total").inc(data.size());
    {
        TraceSpan span("train.fit.memory");
        span.field("samples",
                   static_cast<std::uint64_t>(data.size()));
        if (auto st = model.memory_.fit(data); !st) {
            model.markMemoryDegraded(st.message());
            if (report)
                ++report->subModelsDegraded;
        } else {
            warmMemory_.insert_or_assign(nf.name(), model.memory_);
        }
    }

    // Fit the solo sensitivity model (seed-averaged, like the
    // memory model).
    model.soloModels_.clear();
    if (solo_data.size() > 0) {
        // Seed-ensemble members fit independently across the pool,
        // collected in seed order.
        TraceSpan span("train.fit.solo");
        span.field("samples",
                   static_cast<std::uint64_t>(solo_data.size()));
        // Bin the solo feature matrix once for the whole ensemble
        // and warm-start members from the previous run for this NF
        // (byte-identical either way — the regressors' fingerprints
        // decide what work a refit can skip).
        std::shared_ptr<const ml::BinnedMatrix> solo_binned;
        if (opts.memory.seeds > 1) {
            solo_binned = std::make_shared<const ml::BinnedMatrix>(
                ml::BinnedMatrix::build(solo_data));
        }
        auto &warm = warmSolo_[nf.name()];
        model.soloModels_ = parallelMap(
            static_cast<std::size_t>(opts.memory.seeds),
            [&](std::size_t s) {
                ml::GbrParams gp = opts.memory.gbr;
                gp.seed =
                    opts.seed + 1000 + static_cast<std::uint64_t>(s);
                ml::GradientBoostingRegressor gbr =
                    s < warm.size() && warm[s].params() == gp
                        ? std::move(warm[s])
                        : ml::GradientBoostingRegressor(gp);
                gbr.fit(solo_data, solo_binned);
                return gbr;
            });
        warm = model.soloModels_;
    } else {
        model.markSoloDegraded(
            "no usable solo measurements survived screening");
        if (report)
            ++report->subModelsDegraded;
    }

    // ---- Accelerator model calibration ----
    // unique_ptr, not plain RAII: the span must close before the
    // pattern-detection span opens so the phases are siblings.
    auto cal_span = std::make_unique<TraceSpan>("train.calibrate");
    const auto &w_def = workloadOf(nf, defaults);
    std::size_t accel_runs = 0;
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        if (!w_def.accel[k].used)
            continue;
        auto kind = static_cast<hw::AccelKind>(k);
        std::vector<AccelCalibrationPoint> points;
        // Traffic points: MTBR sweep at the default packet size plus
        // a packet-size sweep, so both coefficients of the service
        // law are identified.
        std::vector<traffic::TrafficProfile> cal_profiles;
        if (kind == hw::AccelKind::Regex) {
            for (double m : {100.0, 400.0, 700.0, 1000.0}) {
                cal_profiles.push_back(defaults.withAttribute(
                    traffic::Attribute::Mtbr, m));
            }
            for (double sz : {256.0, 800.0}) {
                cal_profiles.push_back(defaults.withAttribute(
                    traffic::Attribute::PacketSize, sz));
            }
        } else {
            for (double sz : {512.0, 1024.0, 1500.0}) {
                cal_profiles.push_back(defaults.withAttribute(
                    traffic::Attribute::PacketSize, sz));
            }
        }
        // Bench knobs chosen so the bench's per-request service time
        // dominates the target's other stages at equilibrium — the
        // "high enough" requirement of §4.1.1.
        std::vector<double> knobs =
            kind == hw::AccelKind::Regex
                ? std::vector<double>{1600.0, 3200.0}
                : std::vector<double>{16000.0, 40000.0};
        for (const auto &p : cal_profiles) {
            const auto &w = workloadOf(nf, p);
            for (double knob : knobs) {
                const auto &bench =
                    library_.accelBench(kind, 0.0, knob);
                auto ms =
                    runScreened({w, bench.workload}, "calibration");
                ++accel_runs;
                if (!ms)
                    continue; // calibrate() copes with fewer points
                AccelCalibrationPoint pt;
                pt.benchServiceTime = bench.serviceTime;
                pt.measuredThroughput = (*ms)[0].throughput;
                pt.mtbr = p.mtbr;
                pt.payloadBytes = static_cast<double>(
                    net::PacketBuilder::payloadForFrame(
                        p.packetSize, net::IpProto::Udp));
                points.push_back(pt);
            }
        }
        AccelQueueModel am;
        if (auto st = am.calibrate(points); st) {
            model.accel_[k] = std::move(am);
        } else {
            // An uncalibratable accelerator model no longer aborts
            // the run: the model predicts without it, degraded.
            model.markAccelDegraded(kind, st.message());
            if (report)
                ++report->subModelsDegraded;
        }
    }
    cal_span->field("runs", static_cast<std::uint64_t>(accel_runs));
    cal_span.reset();
    if (report)
        report->accelCalibrationRuns = accel_runs;

    // ---- Execution pattern detection (§4.2) ----
    TraceSpan pattern_span("train.pattern");
    bool any_accel = false;
    for (int k = 0; k < hw::numAccelKinds; ++k)
        any_accel |= static_cast<bool>(model.accel_[k]);
    if (!any_accel) {
        // Single-resource: Eq. 3 and Eq. 4 coincide; the declared
        // default (run-to-completion) is used.
        model.pattern_ = fw::ExecutionPattern::RunToCompletion;
    } else {
        // Joint-contention probes: both resources must be pressed
        // hard simultaneously, otherwise Eq. 3 and Eq. 4 coincide
        // and the detector reads noise. Per-resource drops are
        // *measured* by co-running the NF with one bench at a time,
        // then the joint run picks the composition branch that fits.
        std::size_t n_mem = library_.memBenches().size();
        const auto &w_nf = workloadOf(nf, defaults);
        auto solo_ms = runScreened({w_nf}, "pattern-solo");
        double solo_meas = solo_ms ? (*solo_ms)[0].throughput : 0.0;
        std::vector<PatternObservation> obs;
        // Open-loop moderate accelerator load: the additive regime
        // where the two branches of Eq. 7 differ most (closed-loop
        // saturation pins every NF at its round-robin share, where
        // they coincide).
        for (const auto &[mem_idx, rx_rate] :
             std::vector<std::pair<std::size_t, double>>{
                 {n_mem - 2, 150e3},
                 {n_mem - 8, 250e3},
                 {n_mem / 2, 350e3},
                 {n_mem - 5, 100e3}}) {
            if (solo_meas <= 0.0)
                break; // no usable solo baseline for drops
            const auto &mem = library_.memBenches()[
                mem_idx % library_.memBenches().size()];

            PatternObservation o;
            o.soloThroughput = std::max(1.0, solo_meas);

            // Memory-only drop (measured).
            auto m_mem =
                runScreened({w_nf, mem.workload}, "pattern-mem");
            if (!m_mem)
                continue;
            o.drops.push_back(std::max(
                0.0, o.soloThroughput - (*m_mem)[0].throughput));

            // Accelerator-only drops (measured), and the joint
            // deployment.
            std::vector<fw::WorkloadProfile> deploy = {w_nf,
                                                       mem.workload};
            bool complete = true;
            for (int k = 0; k < hw::numAccelKinds; ++k) {
                if (!model.accel_[k])
                    continue;
                auto kind = static_cast<hw::AccelKind>(k);
                double knob =
                    kind == hw::AccelKind::Regex ? 800.0 : 4000.0;
                const auto &bench =
                    library_.accelBench(kind, rx_rate, knob);
                auto m_k = runScreened({w_nf, bench.workload},
                                       "pattern-accel");
                if (!m_k) {
                    complete = false;
                    break;
                }
                o.drops.push_back(std::max(
                    0.0, o.soloThroughput - (*m_k)[0].throughput));
                deploy.push_back(bench.workload);
            }
            if (!complete)
                continue;
            if (deploy.size() > 4)
                deploy.resize(4); // core budget
            auto ms = runScreened(deploy, "pattern-joint");
            if (!ms)
                continue;
            o.measuredThroughput = (*ms)[0].throughput;
            obs.push_back(std::move(o));
        }
        if (obs.empty()) {
            // Every probe was lost to faults: keep the declared
            // default instead of reading noise.
            model.pattern_ = fw::ExecutionPattern::RunToCompletion;
            warnEvent("profiler", "pattern-detection-skipped",
                      {{"nf", nf.name()},
                       {"reason", "no usable probe measurements"}});
        } else {
            model.pattern_ = detectPattern(obs);
        }
    }
    pattern_span.field("pattern",
                       fw::patternName(model.pattern_));
    return model;
}

} // namespace tomur::core
