#include "tomur/attribution.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur::core {

const char *
attributedResourceName(int resource)
{
    if (resource == 0)
        return "memory";
    int kind = resource - 1;
    if (kind >= 0 && kind < hw::numAccelKinds)
        return hw::accelName(static_cast<hw::AccelKind>(kind));
    panic("attributedResourceName: bad resource index");
}

std::string
ContentionAttribution::toString() const
{
    std::string out;
    for (const auto &c : ranked) {
        if (!out.empty())
            out += ", ";
        out += strf("%s %.0f%% (-%.1f Kpps)",
                    attributedResourceName(c.resource),
                    100.0 * c.share, c.drop / 1e3);
    }
    return out;
}

ContentionAttribution
attributeContention(const PredictionBreakdown &b)
{
    ContentionAttribution a;
    a.soloThroughput = b.soloThroughput;
    a.predicted = b.predicted;
    a.totalDrop = std::max(0.0, b.soloThroughput - b.predicted);
    a.confidence = b.confidence;
    a.degraded = b.degraded;

    // Per-resource drops against the solo baseline. The breakdown's
    // resource-only throughputs are already clamped to [0, solo];
    // the max() guards keep a hand-built breakdown from producing
    // negative contributions.
    a.ranked.push_back(
        {0,
         std::max(0.0, b.soloThroughput - b.memoryOnlyThroughput),
         0.0});
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        if (!b.accelUsed[k])
            continue;
        a.ranked.push_back(
            {k + 1,
             std::max(0.0,
                      b.soloThroughput - b.accelOnlyThroughput[k]),
             0.0});
    }

    // Descending by drop; stable keeps the resource-index order on
    // ties, so memory wins an all-zero tie exactly like the
    // predictor's historical strict-> argmax did.
    std::stable_sort(a.ranked.begin(), a.ranked.end(),
                     [](const ResourceContribution &x,
                        const ResourceContribution &y) {
                         return x.drop > y.drop;
                     });

    double sum = 0.0;
    for (const auto &c : a.ranked)
        sum += c.drop;
    if (sum > 0.0) {
        for (auto &c : a.ranked)
            c.share = c.drop / sum;
    }
    a.dominantResource = a.ranked.front().resource;
    return a;
}

} // namespace tomur::core
