#include "tomur/accel_model.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"
#include "common/stats.hh"
#include "hw/accel.hh"

namespace tomur::core {

Status
AccelQueueModel::calibrate(
    const std::vector<AccelCalibrationPoint> &points)
{
    if (points.size() < 2) {
        return Status::invalidArgument(
            "AccelQueueModel: need at least two calibration points");
    }

    // Group observations by traffic point; pairs within a group
    // isolate n (Eq. 2 with the bench's known service time):
    //   1/T = t_i + t_b / n  =>  n = (t_b1 - t_b2)/(1/T1 - 1/T2).
    std::map<std::pair<double, double>,
             std::vector<const AccelCalibrationPoint *>>
        by_traffic;
    for (const auto &p : points) {
        if (!std::isfinite(p.measuredThroughput) ||
            !std::isfinite(p.benchServiceTime) ||
            p.measuredThroughput <= 0.0 ||
            p.benchServiceTime <= 0.0) {
            return Status::invalidArgument(
                "AccelQueueModel: non-positive or non-finite "
                "calibration point");
        }
        by_traffic[{p.mtbr, p.payloadBytes}].push_back(&p);
    }

    std::vector<double> n_estimates;
    for (const auto &[traffic, group] : by_traffic) {
        for (std::size_t a = 0; a < group.size(); ++a) {
            for (std::size_t b = a + 1; b < group.size(); ++b) {
                double dtb = group[a]->benchServiceTime -
                             group[b]->benchServiceTime;
                double dinv = 1.0 / group[a]->measuredThroughput -
                              1.0 / group[b]->measuredThroughput;
                if (std::fabs(dtb) < 1e-12 ||
                    std::fabs(dinv) < 1e-15) {
                    continue;
                }
                double n = dtb / dinv;
                if (n > 0.0 && n < 64.0)
                    n_estimates.push_back(n);
            }
        }
    }
    if (n_estimates.empty()) {
        return Status::invalidArgument(
            "AccelQueueModel: calibration points do not constrain "
            "the queue count (vary the bench service time)");
    }
    queues_ = std::max(
        1, static_cast<int>(std::lround(median(n_estimates))));

    // Per-point service time, then the traffic law
    // t = t0 + byteSlope * p + matchSlope * (m p / 1e6). Only fit
    // the features that actually vary across the calibration set:
    // with a constant MTBR the two features are collinear (matches
    // = mtbr/1e6 * payload) and a joint fit is ill-posed.
    std::vector<double> times, payloads, matches;
    for (const auto &p : points) {
        double t = 1.0 / p.measuredThroughput -
                   p.benchServiceTime / queues_;
        if (t <= 0.0)
            continue;
        times.push_back(t);
        payloads.push_back(p.payloadBytes);
        matches.push_back(p.mtbr * p.payloadBytes / 1e6);
    }
    if (times.empty()) {
        return Status::invalidArgument(
            "AccelQueueModel: no usable service-time estimates");
    }

    auto varies = [](const std::vector<double> &xs) {
        return maxOf(xs) - minOf(xs) >
               1e-9 * std::max(1.0, std::fabs(maxOf(xs)));
    };
    bool vary_payload = varies(payloads);
    bool vary_matches = varies(matches);
    // mtbr varies independently only when matches/payload ratio
    // changes across points.
    std::vector<double> ratio(times.size());
    for (std::size_t i = 0; i < times.size(); ++i)
        ratio[i] = payloads[i] > 0.0 ? matches[i] / payloads[i] : 0.0;
    bool vary_mtbr = varies(ratio);

    t0_ = mean(times);
    byteSlope_ = 0.0;
    matchSlope_ = 0.0;
    if (vary_payload && vary_mtbr && times.size() >= 3) {
        ml::Dataset fit({"payload", "matches"});
        for (std::size_t i = 0; i < times.size(); ++i)
            fit.add({payloads[i], matches[i]}, times[i]);
        ml::LinearRegression lr;
        lr.fit(fit, 1e-24);
        t0_ = lr.intercept();
        byteSlope_ = std::max(0.0, lr.coefficients()[0]);
        matchSlope_ = std::max(0.0, lr.coefficients()[1]);
    } else if (vary_payload && times.size() >= 2) {
        ml::LinearRegression lr;
        lr.fit1d(payloads, times, 1e-24);
        t0_ = lr.intercept();
        byteSlope_ = std::max(0.0, lr.coefficients()[0]);
    } else if (vary_matches && times.size() >= 2) {
        ml::LinearRegression lr;
        lr.fit1d(matches, times, 1e-24);
        t0_ = lr.intercept();
        matchSlope_ = std::max(0.0, lr.coefficients()[0]);
    }
    if (t0_ < 0.0)
        t0_ = 0.0;
    if (t0_ <= 0.0 && byteSlope_ <= 0.0 && matchSlope_ <= 0.0)
        t0_ = mean(times);
    calibrated_ = true;
    return Status::ok();
}

double
AccelQueueModel::serviceTime(double mtbr, double payload_bytes) const
{
    if (!calibrated_)
        panic("AccelQueueModel::serviceTime before calibrate");
    double t = t0_ + byteSlope_ * payload_bytes +
               matchSlope_ * (mtbr * payload_bytes / 1e6);
    return std::max(t, 1e-9);
}

double
AccelQueueModel::predictThroughput(
    double mtbr, double payload_bytes,
    const std::vector<AccelContention> &competitors) const
{
    if (!calibrated_)
        panic("AccelQueueModel::predictThroughput before calibrate");
    std::vector<hw::AccelQueue> queues;
    for (int q = 0; q < queues_; ++q) {
        queues.push_back(hw::AccelQueue{
            serviceTime(mtbr, payload_bytes), 0.0, true});
    }
    for (const auto &c : competitors) {
        if (!c.used)
            continue;
        for (int q = 0; q < c.queues; ++q) {
            queues.push_back(hw::AccelQueue{
                c.serviceTime, c.offeredRate / c.queues,
                c.closedLoop});
        }
    }
    auto res = hw::solveRoundRobin(queues);
    double rate = 0.0;
    for (int q = 0; q < queues_; ++q)
        rate += res[q].throughput;
    return rate;
}

} // namespace tomur::core
