#include "tomur/predictor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "net/packet.hh"
#include "tomur/attribution.hh"

namespace tomur::core {

namespace fw = framework;

namespace {

/** Confidence ceilings per fallback stage (see ModelHealth docs). */
constexpr double kMemoryOnlyConfidence = 0.6;
constexpr double kSoloPassthroughConfidence = 0.25;

/** Record a fallback on the breakdown (keeps the worst stage). */
void
degrade(PredictionBreakdown &out, double confidence,
        const std::string &reason)
{
    out.degraded = true;
    out.confidence = std::min(out.confidence, confidence);
    if (!out.degradedReason.empty())
        out.degradedReason += "; ";
    out.degradedReason += reason;
}

} // namespace

void
TomurModel::markMemoryDegraded(const std::string &reason)
{
    health_.memoryDegraded = true;
    warnEvent("predictor", "memory-model-degraded",
              {{"nf", nfName_}, {"reason", reason}});
}

void
TomurModel::markSoloDegraded(const std::string &reason)
{
    health_.soloDegraded = true;
    warnEvent("predictor", "solo-model-degraded",
              {{"nf", nfName_}, {"reason", reason}});
}

void
TomurModel::markAccelDegraded(hw::AccelKind kind,
                              const std::string &reason)
{
    health_.accelDegraded[static_cast<int>(kind)] = true;
    warnEvent("predictor", "accel-model-degraded",
              {{"nf", nfName_},
               {"accel", hw::accelName(kind)},
               {"reason", reason}});
}

Result<double>
TomurModel::trySoloThroughput(const traffic::TrafficProfile &p) const
{
    if (soloModels_.empty()) {
        return Status::failedPrecondition(
            "TomurModel::soloThroughput before training");
    }
    if (health_.soloDegraded) {
        return Status::unavailable(
            "solo sensitivity model marked degraded");
    }
    double sum = 0.0;
    for (const auto &m : soloModels_)
        sum += m.predict(p.toVector());
    double t = sum / soloModels_.size();
    if (!std::isfinite(t)) {
        return Status::unavailable(
            "solo sensitivity model returned a non-finite estimate");
    }
    return t;
}

double
TomurModel::soloThroughput(const traffic::TrafficProfile &p) const
{
    auto r = trySoloThroughput(p);
    if (!r) {
        warnEvent("predictor", "solo-estimate-unavailable",
                  {{"nf", nfName_},
                   {"reason", r.status().message()}});
        return 0.0;
    }
    return r.value();
}

PredictionBreakdown
TomurModel::predictDetailed(
    const std::vector<ContentionLevel> &competitors,
    const traffic::TrafficProfile &profile, double solo_hint) const
{
    PredictionBreakdown out;

    // ---- Solo baseline: profiled hint, else the solo model ----
    double t_solo = 0.0;
    if (solo_hint > 0.0 && std::isfinite(solo_hint)) {
        t_solo = solo_hint;
    } else if (auto r = trySoloThroughput(profile); r) {
        t_solo = std::max(1.0, r.value());
    } else {
        // No baseline at all: the prediction carries no information.
        // Report that instead of crashing (the pre-robustness code
        // panicked here).
        degrade(out, 0.0,
                "no solo baseline: " + r.status().message());
        warnEvent("predictor", "prediction-unavailable",
                  {{"nf", nfName_},
                   {"reason", out.degradedReason}});
        return out;
    }
    out.soloThroughput = t_solo;

    // ---- Memory stage (or the solo-hint passthrough fallback) ----
    double t_mem = t_solo;
    if (memory_.fitted() && !health_.memoryDegraded) {
        double ratio = memory_.predict(competitors, profile);
        if (std::isfinite(ratio)) {
            t_mem = std::clamp(ratio, 0.0, 1.0) * t_solo;
        } else {
            degrade(out, kSoloPassthroughConfidence,
                    "memory model returned a non-finite ratio; "
                    "using the solo baseline");
        }
    } else {
        degrade(out, kSoloPassthroughConfidence,
                health_.memoryDegraded
                    ? "memory model marked degraded; using the solo "
                      "baseline"
                    : "memory model not fitted; using the solo "
                      "baseline");
    }
    out.memoryOnlyThroughput = t_mem;

    std::vector<double> drops = {t_solo - t_mem};

    // ---- Accelerator-only predictions ----
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        if (health_.accelDegraded[k]) {
            // The NF uses this accelerator but its sub-model is
            // unusable: fall back to ignoring this resource's
            // contention (memory-only composition).
            out.accelOnlyThroughput[k] = t_solo;
            degrade(out, kMemoryOnlyConfidence,
                    std::string(hw::accelName(
                        static_cast<hw::AccelKind>(k))) +
                        " model degraded; its contention is ignored");
            continue;
        }
        if (!accel_[k]) {
            out.accelOnlyThroughput[k] = t_solo;
            continue;
        }
        out.accelUsed[k] = true;
        std::vector<AccelContention> comp;
        for (const auto &c : competitors) {
            if (c.accel[k].used)
                comp.push_back(c.accel[k]);
        }
        double payload = static_cast<double>(
            net::PacketBuilder::payloadForFrame(
                profile.packetSize, net::IpProto::Udp));
        double stage = accel_[k]->predictThroughput(
            profile.mtbr, payload, comp);
        double t_k = std::clamp(stage, 0.0, t_solo);
        out.accelOnlyThroughput[k] = t_k;
        drops.push_back(t_solo - t_k);
    }

    out.predicted = compose(CompositionKind::ExecutionPattern,
                            pattern_, t_solo, drops);
    // The ranking lives in the attribution module (the monitor and
    // the diagnosis use case consume the same one).
    out.dominantResource = attributeContention(out).dominantResource;
    if (out.degraded) {
        warnEvent("predictor", "degraded-prediction",
                  {{"nf", nfName_},
                   {"confidence", strf("%.2f", out.confidence)},
                   {"reason", out.degradedReason}});
    }
    return out;
}

double
TomurModel::predict(const std::vector<ContentionLevel> &competitors,
                    const traffic::TrafficProfile &profile,
                    double solo_hint) const
{
    return predictDetailed(competitors, profile, solo_hint)
        .predicted;
}

double
TomurModel::predictComposed(
    CompositionKind kind,
    const std::vector<ContentionLevel> &competitors,
    const traffic::TrafficProfile &profile, double solo_hint) const
{
    auto d = predictDetailed(competitors, profile, solo_hint);
    std::vector<double> drops = {d.soloThroughput -
                                 d.memoryOnlyThroughput};
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        if (d.accelUsed[k]) {
            drops.push_back(d.soloThroughput -
                            d.accelOnlyThroughput[k]);
        }
    }
    return compose(kind, pattern_, d.soloThroughput, drops);
}

} // namespace tomur::core
