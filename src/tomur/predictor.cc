#include "tomur/predictor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "net/packet.hh"

namespace tomur::core {

namespace fw = framework;

double
TomurModel::soloThroughput(const traffic::TrafficProfile &p) const
{
    if (soloModels_.empty())
        panic("TomurModel::soloThroughput before training");
    double sum = 0.0;
    for (const auto &m : soloModels_)
        sum += m.predict(p.toVector());
    return sum / soloModels_.size();
}

PredictionBreakdown
TomurModel::predictDetailed(
    const std::vector<ContentionLevel> &competitors,
    const traffic::TrafficProfile &profile, double solo_hint) const
{
    PredictionBreakdown out;
    double t_solo = solo_hint > 0.0
        ? solo_hint
        : std::max(1.0, soloThroughput(profile));
    out.soloThroughput = t_solo;

    // Memory-only prediction: learned damage ratio times baseline.
    double ratio =
        std::clamp(memory_.predict(competitors, profile), 0.0, 1.0);
    double t_mem = ratio * t_solo;
    out.memoryOnlyThroughput = t_mem;

    std::vector<double> drops = {t_solo - t_mem};
    double worst_drop = drops[0];
    out.dominantResource = 0;

    // Accelerator-only predictions.
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        if (!accel_[k]) {
            out.accelOnlyThroughput[k] = t_solo;
            continue;
        }
        out.accelUsed[k] = true;
        std::vector<AccelContention> comp;
        for (const auto &c : competitors) {
            if (c.accel[k].used)
                comp.push_back(c.accel[k]);
        }
        double payload = static_cast<double>(
            net::PacketBuilder::payloadForFrame(
                profile.packetSize, net::IpProto::Udp));
        double stage = accel_[k]->predictThroughput(
            profile.mtbr, payload, comp);
        double t_k = std::clamp(stage, 0.0, t_solo);
        out.accelOnlyThroughput[k] = t_k;
        double drop = t_solo - t_k;
        drops.push_back(drop);
        if (drop > worst_drop) {
            worst_drop = drop;
            out.dominantResource = k + 1;
        }
    }

    out.predicted = compose(CompositionKind::ExecutionPattern,
                            pattern_, t_solo, drops);
    return out;
}

double
TomurModel::predict(const std::vector<ContentionLevel> &competitors,
                    const traffic::TrafficProfile &profile,
                    double solo_hint) const
{
    return predictDetailed(competitors, profile, solo_hint)
        .predicted;
}

double
TomurModel::predictComposed(
    CompositionKind kind,
    const std::vector<ContentionLevel> &competitors,
    const traffic::TrafficProfile &profile, double solo_hint) const
{
    auto d = predictDetailed(competitors, profile, solo_hint);
    std::vector<double> drops = {d.soloThroughput -
                                 d.memoryOnlyThroughput};
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        if (d.accelUsed[k]) {
            drops.push_back(d.soloThroughput -
                            d.accelOnlyThroughput[k]);
        }
    }
    return compose(kind, pattern_, d.soloThroughput, drops);
}

} // namespace tomur::core
