/**
 * @file
 * Offline profiling and training harness (Appendix F.2).
 *
 * BenchLibrary profiles the synthetic competitors once (their
 * contention levels are reusable across all target NFs). TomurTrainer
 * then builds a TomurModel for a target NF: memory-model training
 * data via adaptive/random/full profiling against mem-bench,
 * accelerator-model calibration against regex-/compression-bench,
 * and black-box execution-pattern detection.
 */

#ifndef TOMUR_TOMUR_PROFILER_HH
#define TOMUR_TOMUR_PROFILER_HH

#include <map>
#include <memory>

#include "nfs/bench_nfs.hh"
#include "sim/testbed.hh"
#include "tomur/predictor.hh"

namespace tomur::core {

/**
 * Profiled synthetic competitors (one-time effort, reused by every
 * target NF).
 */
class BenchLibrary
{
  public:
    /** One mem-bench configuration with its measured contention. */
    struct MemBenchEntry
    {
        nfs::MemBenchConfig config;
        framework::WorkloadProfile workload;
        ContentionLevel level;
    };

    /** One accelerator-bench configuration. */
    struct AccelBenchEntry
    {
        hw::AccelKind kind = hw::AccelKind::Regex;
        double requestRate = 0.0; ///< 0 = closed loop
        double serviceTime = 0.0; ///< measured per-request time
        framework::WorkloadProfile workload;
        ContentionLevel level;
    };

    BenchLibrary(sim::Testbed &testbed,
                 const framework::DeviceSet &devices,
                 const regex::RuleSet &rules);

    /** All profiled mem-bench contention levels. */
    const std::vector<MemBenchEntry> &memBenches() const
    {
        return memBenches_;
    }

    /** A uniformly random mem-bench entry. */
    const MemBenchEntry &randomMemBench(Rng &rng) const;

    /**
     * An accelerator bench at the given offered rate and traffic.
     * Entries are profiled on first use and cached.
     * @param rate offered request rate, 0 for closed loop
     * @param mtbr bench traffic MTBR (regex) — controls its service
     *        time; for compression, packet size plays this role
     */
    const AccelBenchEntry &accelBench(hw::AccelKind kind, double rate,
                                      double mtbr);

    sim::Testbed &testbed() { return testbed_; }
    const regex::RuleSet &rules() const { return rules_; }
    const framework::DeviceSet &devices() const { return devices_; }

  private:
    sim::Testbed &testbed_;
    framework::DeviceSet devices_;
    regex::RuleSet rules_;
    std::vector<MemBenchEntry> memBenches_;
    std::map<std::tuple<int, double, double>, AccelBenchEntry>
        accelCache_;
};

/** Sampling strategies for memory-model training data (§7.6). */
enum class SamplingStrategy
{
    Adaptive, ///< Algorithm 1
    Random,   ///< same quota, uniform random traffic + contention
    Full,     ///< dense grid (the expensive reference)
};

/**
 * Measurement screening / retry policy (the robustness layer).
 *
 * Every training measurement passes a plausibility screen (finite,
 * positive, complete co-run batch, damage ratio below ratioCeiling);
 * a sample that fails is re-measured up to retryBudget times and
 * abandoned (with a structured WARN) if it never passes. The
 * defaults are chosen so a fault-free testbed never triggers a
 * retry — clean profiling runs are bit-identical with screening on.
 *
 * Suspiciously low damage ratios (below verifyBelowRatio) can
 * additionally be verified by repetition: the deployment is
 * re-measured and the readings screened by median absolute
 * deviation, keeping the median — a faulted low outlier disagrees
 * with its re-measurements, a genuinely heavy contention level
 * reproduces. verifyBelowRatio = 0 (default) disables this extra
 * cost; enable it when profiling on a faulty testbed.
 */
struct ScreenOptions
{
    bool enabled = true;
    /** Re-measurements allowed per faulted sample. */
    int retryBudget = 3;
    /** Damage ratios above this are physically implausible
     *  (contention cannot speed an NF up beyond noise). */
    double ratioCeiling = 1.3;
    /** Verify-by-repetition threshold (0 disables). */
    double verifyBelowRatio = 0.0;
    /** MAD multiple beyond which a repeated reading is an outlier. */
    double madThreshold = 6.0;
};

/** Training options. */
struct TrainOptions
{
    SamplingStrategy sampling = SamplingStrategy::Adaptive;
    AdaptiveOptions adaptive{};
    MemoryModelOptions memory{};
    ScreenOptions screen{};
    /** Contended co-runs collected per visited traffic profile. */
    int contentionSamplesPerProfile = 4;
    /** Grid points per attribute for Full sampling. */
    int fullGridPerAttribute = 7;
    std::uint64_t seed = 99;
};

/** Training report (profiling cost bookkeeping for Table 8, plus
 *  fault-screen accounting). */
struct TrainReport
{
    std::size_t memorySamples = 0;
    std::size_t accelCalibrationRuns = 0;
    std::vector<traffic::Attribute> keptAttributes;

    /** Measurements rejected by the plausibility/MAD screens. */
    std::size_t faultySamplesDetected = 0;
    /** Extra measurements spent re-measuring faulted samples. */
    std::size_t retriesUsed = 0;
    /** Samples given up on after the retry budget ran out. */
    std::size_t samplesAbandoned = 0;
    /** Sub-models that could not be trained/calibrated (the model
     *  was marked degraded instead of aborting the run). */
    std::size_t subModelsDegraded = 0;
};

/**
 * Builds TomurModels against a testbed and bench library.
 */
class TomurTrainer
{
  public:
    TomurTrainer(BenchLibrary &library);

    /**
     * Train a model for one NF.
     * @param nf the target (will be reset/profiled repeatedly)
     * @param defaults the default traffic profile
     * @param report optional cost bookkeeping
     */
    TomurModel train(framework::NetworkFunction &nf,
                     const traffic::TrafficProfile &defaults,
                     const TrainOptions &opts = {},
                     TrainReport *report = nullptr);

    /**
     * Profile the contention level an NF applies at a traffic
     * profile (used to describe deployed competitors at prediction
     * time). Cached per (NF name, profile).
     */
    const ContentionLevel &
    contentionOf(framework::NetworkFunction &nf,
                 const traffic::TrafficProfile &profile);

    /** Workload profile cache (exposed for the experiment benches). */
    const framework::WorkloadProfile &
    workloadOf(framework::NetworkFunction &nf,
               const traffic::TrafficProfile &profile);

    /** The bench library this trainer draws on. */
    BenchLibrary &library() { return library_; }

    /** Profile every uncached profile of a planned sweep, smallest
     *  flow count first, so the incremental session warms each flow
     *  exactly once. Purely a cache warmer: subsequent workloadOf
     *  calls hit the cache in any order. */
    void
    prewarmWorkloads(framework::NetworkFunction &nf,
                     std::vector<traffic::TrafficProfile> profiles);

  private:
    /** The incremental profiling session for one NF (created on
     *  first use, replaced if a different instance takes the name). */
    framework::WorkloadProfiler &
    profilerFor(framework::NetworkFunction &nf);

    BenchLibrary &library_;
    std::map<std::string,
             std::unique_ptr<framework::WorkloadProfiler>>
        profilers_;
    std::map<std::pair<std::string, std::vector<double>>,
             framework::WorkloadProfile>
        workloadCache_;
    std::map<std::pair<std::string, std::vector<double>>,
             ContentionLevel>
        contentionCache_;
    /** Warm-start seeds for retraining: the previous run's fitted
     *  ensembles per NF name. Reuse never changes results (the
     *  regressors' fingerprint contract); it only skips re-binning
     *  and no-op refits in the supervisor's bounded retrain loop. */
    std::map<std::string, MemoryModel> warmMemory_;
    std::map<std::string,
             std::vector<ml::GradientBoostingRegressor>>
        warmSolo_;
};

} // namespace tomur::core

#endif // TOMUR_TOMUR_PROFILER_HH
