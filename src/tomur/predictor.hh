/**
 * @file
 * The trained Tomur model for one NF: per-resource models composed
 * by execution pattern (§3, Appendix F.3). Prediction consumes only
 * competitor contention levels and the target's traffic profile.
 */

#ifndef TOMUR_TOMUR_PREDICTOR_HH
#define TOMUR_TOMUR_PREDICTOR_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "framework/nf.hh"
#include "tomur/accel_model.hh"
#include "tomur/adaptive.hh"
#include "tomur/composition.hh"
#include "tomur/memory_model.hh"

namespace tomur::core {

/** Per-resource breakdown of one prediction. */
struct PredictionBreakdown
{
    double soloThroughput = 0.0;
    double memoryOnlyThroughput = 0.0;
    double accelOnlyThroughput[hw::numAccelKinds] = {};
    bool accelUsed[hw::numAccelKinds] = {};
    double predicted = 0.0;
    /** Resource with the largest predicted drop ("bottleneck"):
     *  0 = memory, otherwise 1 + accelerator kind index
     *  (1 = regex, 2 = compression, 3 = crypto). */
    int dominantResource = 0;
};

/**
 * A trained predictive model for one NF.
 */
class TomurModel
{
  public:
    TomurModel() = default;

    const std::string &nfName() const { return nfName_; }
    framework::ExecutionPattern pattern() const { return pattern_; }

    /**
     * Predict throughput under the given competitors and traffic.
     *
     * @param solo_hint the NF's profiled solo throughput at this
     *        traffic profile (Appendix F.3 input (3)); pass a
     *        non-positive value to fall back to the memory model's
     *        zero-contention estimate.
     */
    double
    predict(const std::vector<ContentionLevel> &competitors,
            const traffic::TrafficProfile &profile,
            double solo_hint = -1.0) const;

    /** Predict with the per-resource breakdown (diagnosis §7.5.2). */
    PredictionBreakdown
    predictDetailed(const std::vector<ContentionLevel> &competitors,
                    const traffic::TrafficProfile &profile,
                    double solo_hint = -1.0) const;

    /**
     * Predict with an alternative composition strategy (used by the
     * Table 4 / Fig. 2(b) comparisons).
     */
    double
    predictComposed(CompositionKind kind,
                    const std::vector<ContentionLevel> &competitors,
                    const traffic::TrafficProfile &profile,
                    double solo_hint = -1.0) const;

    /** Predicted solo throughput at a traffic profile. */
    double soloThroughput(const traffic::TrafficProfile &p) const;

    /** The memory per-resource model. */
    const MemoryModel &memoryModel() const { return memory_; }

    /** The accelerator model for a kind (nullopt if unused). */
    const std::optional<AccelQueueModel> &
    accelModel(hw::AccelKind kind) const
    {
        return accel_[static_cast<int>(kind)];
    }

    /**
     * Serialize the whole trained model to a text stream so the
     * offline training cost is paid once: a loaded model predicts
     * bit-identically to the original.
     */
    void save(std::ostream &out) const;

    /** Load from save() output. @return false on malformed input. */
    bool load(std::istream &in);

  private:
    friend class TomurTrainer;

    std::string nfName_;
    framework::ExecutionPattern pattern_ =
        framework::ExecutionPattern::RunToCompletion;
    /**
     * Memory per-resource model. Trained on the *relative* throughput
     * (T_contended / T_solo at the same traffic profile): the GBR
     * learns contention damage, while the traffic dependence of the
     * baseline lives in soloModel_ (the profiled sensitivity curve).
     */
    MemoryModel memory_;
    /** Solo throughput vs traffic attributes (seed-averaged GBR). */
    std::vector<ml::GradientBoostingRegressor> soloModels_;
    std::optional<AccelQueueModel> accel_[hw::numAccelKinds];
};

} // namespace tomur::core

#endif // TOMUR_TOMUR_PREDICTOR_HH
