/**
 * @file
 * The trained Tomur model for one NF: per-resource models composed
 * by execution pattern (§3, Appendix F.3). Prediction consumes only
 * competitor contention levels and the target's traffic profile.
 */

#ifndef TOMUR_TOMUR_PREDICTOR_HH
#define TOMUR_TOMUR_PREDICTOR_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hh"
#include "framework/nf.hh"
#include "tomur/accel_model.hh"
#include "tomur/adaptive.hh"
#include "tomur/composition.hh"
#include "tomur/memory_model.hh"

namespace tomur::core {

/** Per-resource breakdown of one prediction. */
struct PredictionBreakdown
{
    double soloThroughput = 0.0;
    double memoryOnlyThroughput = 0.0;
    double accelOnlyThroughput[hw::numAccelKinds] = {};
    bool accelUsed[hw::numAccelKinds] = {};
    double predicted = 0.0;
    /** Resource with the largest predicted drop ("bottleneck"):
     *  0 = memory, otherwise 1 + accelerator kind index
     *  (1 = regex, 2 = compression, 3 = crypto). */
    int dominantResource = 0;

    /**
     * Prediction trust in [0, 1]. 1.0 = the full model ran; lower
     * values mean a fallback produced the number (see the fallback
     * chain in TomurModel). Consumers ranking or gating on
     * predictions (placement, diagnosis) should weigh or skip
     * low-confidence results.
     */
    double confidence = 1.0;
    /** True whenever any fallback below the full model was taken. */
    bool degraded = false;
    /** Human-readable reason when degraded (empty otherwise). */
    std::string degradedReason;
};

/**
 * Health of a model's parts. Sub-models get marked degraded when
 * their training/calibration data was unusable (e.g. under heavy
 * measurement faults) or by an operator quarantining a suspect part;
 * prediction then follows the fallback chain instead of crashing:
 *
 *   full model  ->  memory-only model  ->  solo-hint passthrough
 *
 * - full: memory + every used accelerator model healthy
 *   (confidence 1.0, degraded = false);
 * - memory-only: an accelerator sub-model is missing/degraded, so
 *   accelerator contention is ignored (confidence <= 0.6);
 * - solo-hint passthrough: the memory model itself is unusable, the
 *   prediction is just the solo baseline, ignoring all contention
 *   (confidence <= 0.25).
 */
struct ModelHealth
{
    bool soloDegraded = false;   ///< solo sensitivity model unusable
    bool memoryDegraded = false; ///< memory contention model unusable
    /** Accel sub-model unusable for a kind the NF does use. */
    bool accelDegraded[hw::numAccelKinds] = {};

    bool
    anyDegraded() const
    {
        bool any = soloDegraded || memoryDegraded;
        for (bool a : accelDegraded)
            any = any || a;
        return any;
    }
};

/** FNV-1a 64 over the serialized model body (the save() checksum). */
std::uint64_t modelBodyChecksum(std::string_view body);

/**
 * A trained predictive model for one NF.
 */
class TomurModel
{
  public:
    TomurModel() = default;

    const std::string &nfName() const { return nfName_; }
    framework::ExecutionPattern pattern() const { return pattern_; }

    /**
     * Predict throughput under the given competitors and traffic.
     *
     * @param solo_hint the NF's profiled solo throughput at this
     *        traffic profile (Appendix F.3 input (3)); pass a
     *        non-positive value to fall back to the memory model's
     *        zero-contention estimate.
     */
    double
    predict(const std::vector<ContentionLevel> &competitors,
            const traffic::TrafficProfile &profile,
            double solo_hint = -1.0) const;

    /** Predict with the per-resource breakdown (diagnosis §7.5.2). */
    PredictionBreakdown
    predictDetailed(const std::vector<ContentionLevel> &competitors,
                    const traffic::TrafficProfile &profile,
                    double solo_hint = -1.0) const;

    /**
     * Predict with an alternative composition strategy (used by the
     * Table 4 / Fig. 2(b) comparisons).
     */
    double
    predictComposed(CompositionKind kind,
                    const std::vector<ContentionLevel> &competitors,
                    const traffic::TrafficProfile &profile,
                    double solo_hint = -1.0) const;

    /** Predicted solo throughput at a traffic profile. */
    double soloThroughput(const traffic::TrafficProfile &p) const;

    /**
     * Predicted solo throughput, or the Status explaining why no
     * estimate exists (untrained or degraded solo model). The
     * double-returning overload above warns and returns 0.0 in that
     * case instead of panicking.
     */
    Result<double>
    trySoloThroughput(const traffic::TrafficProfile &p) const;

    /** The memory per-resource model. */
    const MemoryModel &memoryModel() const { return memory_; }

    /** Health of the sub-models (drives the fallback chain). */
    const ModelHealth &health() const { return health_; }

    /**
     * Quarantine a sub-model: subsequent predictions skip it via the
     * fallback chain and carry degraded = true. Used by the trainer
     * when calibration data is unusable, and available to operators
     * who distrust a sub-model (e.g. a degraded accelerator).
     */
    void markMemoryDegraded(const std::string &reason);
    void markSoloDegraded(const std::string &reason);
    void markAccelDegraded(hw::AccelKind kind,
                           const std::string &reason);

    /** The accelerator model for a kind (nullopt if unused). */
    const std::optional<AccelQueueModel> &
    accelModel(hw::AccelKind kind) const
    {
        return accel_[static_cast<int>(kind)];
    }

    /**
     * Serialize the whole trained model to a text stream so the
     * offline training cost is paid once: a loaded model predicts
     * bit-identically to the original. The format carries a version
     * tag plus a length + checksum header over the body, so load()
     * rejects truncated or bit-flipped files deterministically.
     */
    Status save(std::ostream &out) const;

    /**
     * Load from save() output. On error the model is left untouched
     * and the Status names the section that failed (header,
     * checksum, memory model, solo models, accelerator models).
     * Contextually convertible to bool: ok == loaded.
     */
    Status load(std::istream &in);

  private:
    friend class TomurTrainer;

    std::string nfName_;
    framework::ExecutionPattern pattern_ =
        framework::ExecutionPattern::RunToCompletion;
    ModelHealth health_;
    /**
     * Memory per-resource model. Trained on the *relative* throughput
     * (T_contended / T_solo at the same traffic profile): the GBR
     * learns contention damage, while the traffic dependence of the
     * baseline lives in soloModel_ (the profiled sensitivity curve).
     */
    MemoryModel memory_;
    /** Solo throughput vs traffic attributes (seed-averaged GBR). */
    std::vector<ml::GradientBoostingRegressor> soloModels_;
    std::optional<AccelQueueModel> accel_[hw::numAccelKinds];
};

} // namespace tomur::core

#endif // TOMUR_TOMUR_PREDICTOR_HH
