#include "tomur/supervisor.hh"

#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/deadline.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "common/strutil.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"

namespace tomur::core {

namespace {

/** tomur_supervisor_* metrics (looked up once). */
struct SupervisorMetrics
{
    Counter &events =
        metrics().counter("tomur_supervisor_events_total");
    Counter &breakerOpen =
        metrics().counter("tomur_supervisor_breaker_open_total");
    Counter &breakerClosed =
        metrics().counter("tomur_supervisor_breaker_closed_total");
    Counter &recalibrations =
        metrics().counter("tomur_supervisor_recalibrations_total");
    Counter &recalFailures = metrics().counter(
        "tomur_supervisor_recalibration_failures_total");
    Counter &deadlineMissed =
        metrics().counter("tomur_supervisor_deadline_missed_total");
    Counter &checkpoints =
        metrics().counter("tomur_supervisor_checkpoints_total");
    Gauge &breakerState =
        metrics().gauge("tomur_supervisor_breaker_state");
};

SupervisorMetrics &
supMetrics()
{
    static SupervisorMetrics sm;
    return sm;
}

} // namespace

const char *
breakerStateName(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      case BreakerState::HalfOpen:
        return "half-open";
    }
    panic("breakerStateName: bad state");
}

const char *
supervisorEventName(SupervisorEventKind kind)
{
    switch (kind) {
      case SupervisorEventKind::RecalibrationStarted:
        return "RECALIBRATION_STARTED";
      case SupervisorEventKind::RecalibrationSucceeded:
        return "RECALIBRATION_SUCCEEDED";
      case SupervisorEventKind::RecalibrationFailed:
        return "RECALIBRATION_FAILED";
      case SupervisorEventKind::BreakerOpened:
        return "BREAKER_OPENED";
      case SupervisorEventKind::BreakerHalfOpen:
        return "BREAKER_HALF_OPEN";
      case SupervisorEventKind::BreakerClosed:
        return "BREAKER_CLOSED";
      case SupervisorEventKind::DeadlineMissed:
        return "DEADLINE_MISSED";
      case SupervisorEventKind::RetryBudgetExhausted:
        return "RETRY_BUDGET_EXHAUSTED";
      case SupervisorEventKind::CheckpointWritten:
        return "CHECKPOINT_WRITTEN";
    }
    panic("supervisorEventName: bad event kind");
}

std::string
SupervisorEvent::toJson() const
{
    std::string line = "{\"supervisor_event\":\"";
    line += supervisorEventName(kind);
    line += strf("\",\"sample\":%llu", (unsigned long long)sample);
    line += ",\"value\":\"" + traceFormat(value) + "\"";
    line += ",\"detail\":\"" + jsonEscape(detail) + "\"}";
    return line;
}

std::string
SupervisorSummary::toJson() const
{
    std::string line = strf(
        "{\"supervisor_summary\":{\"samples\":%llu,\"state\":\"%s\","
        "\"breaker_trips\":%llu",
        (unsigned long long)samples, breakerStateName(state),
        (unsigned long long)breakerTrips);
    line += strf(",\"recalibrations\":{\"attempted\":%llu,"
                 "\"succeeded\":%llu,\"failed\":%llu}",
                 (unsigned long long)recalibrationsAttempted,
                 (unsigned long long)recalibrationsSucceeded,
                 (unsigned long long)recalibrationsFailed);
    line += strf(",\"deadline_misses\":%llu",
                 (unsigned long long)deadlineMisses);
    line += ",\"events\":{";
    for (int k = 0; k < numSupervisorEventKinds; ++k) {
        if (k)
            line += ",";
        line += "\"";
        line +=
            supervisorEventName(static_cast<SupervisorEventKind>(k));
        line += strf("\":%llu", (unsigned long long)eventCounts[k]);
    }
    line += "}}}";
    return line;
}

Supervisor::Supervisor(SupervisorOptions opts,
                       RecalibrateFn recalibrate)
    : opts_(opts), recalibrate_(std::move(recalibrate))
{
    supMetrics().breakerState.set(
        static_cast<double>(static_cast<int>(state_)));
}

void
Supervisor::fire(std::vector<SupervisorEvent> &out,
                 SupervisorEventKind kind, std::size_t sample,
                 double value, std::string detail)
{
    SupervisorEvent ev;
    ev.kind = kind;
    ev.sample = sample;
    ev.value = value;
    ev.detail = std::move(detail);

    supMetrics().events.inc();
    if (tracer().enabled()) {
        tracePoint("supervisor.event",
                   {{"kind", supervisorEventName(kind)},
                    {"value", traceFormat(value)},
                    {"state", breakerStateName(state_)}},
                   static_cast<std::int64_t>(sample));
    }
    events_.push_back(ev);
    out.push_back(std::move(ev));
}

std::size_t
Supervisor::backoffSamples() const
{
    // trips counts the open we are computing the backoff for, so the
    // first trip waits baseBackoffSamples, the next base*factor, ...
    double backoff = static_cast<double>(opts_.baseBackoffSamples);
    for (std::size_t t = 1; t < breakerTrips_; ++t)
        backoff *= opts_.backoffFactor;
    backoff = std::min(
        backoff, static_cast<double>(opts_.maxBackoffSamples));
    return static_cast<std::size_t>(backoff);
}

Status
Supervisor::attemptRecalibration(std::size_t sample,
                                 std::vector<SupervisorEvent> &out)
{
    ++recalibrationsAttempted_;
    supMetrics().recalibrations.inc();
    fire(out, SupervisorEventKind::RecalibrationStarted, sample,
         static_cast<double>(recalibrationsAttempted_),
         strf("attempt %zu of %zu", recalibrationsAttempted_,
              opts_.maxRecalibrations));

    Status st = Status::ok();
    std::string detail;
    if (!recalibrate_) {
        st = Status::failedPrecondition("no recalibration hook");
    } else {
        try {
            st = recalibrate_(sample, &detail);
        } catch (const SimulatedCrash &) {
            throw; // a crash must kill the run — that is its job
        } catch (const DeadlineExceeded &e) {
            ++deadlineMisses_;
            supMetrics().deadlineMissed.inc();
            fire(out, SupervisorEventKind::DeadlineMissed, sample,
                 static_cast<double>(deadlineMisses_), e.what());
            st = Status::unavailable(e.what());
        } catch (const std::exception &e) {
            st = Status::unavailable(
                strf("recalibration threw: %s", e.what()));
        }
    }

    if (st.isOk()) {
        ++recalibrationsSucceeded_;
        fire(out, SupervisorEventKind::RecalibrationSucceeded,
             sample,
             static_cast<double>(recalibrationsSucceeded_),
             detail.empty() ? "model retrained" : detail);
    } else {
        ++recalibrationsFailed_;
        supMetrics().recalFailures.inc();
        fire(out, SupervisorEventKind::RecalibrationFailed, sample,
             static_cast<double>(consecutiveFailures_ + 1),
             st.message());
    }
    return st;
}

std::vector<SupervisorEvent>
Supervisor::observe(std::size_t sample,
                    const std::vector<MonitorEvent> &monitorEvents)
{
    std::vector<SupervisorEvent> fired;
    lastSample_ = sample;

    // ---- Open: wait out the backoff, then probe half-open ----
    if (state_ == BreakerState::Open) {
        if (sample < reopenAtSample_)
            return fired; // still backing off; recommendations gated
        state_ = BreakerState::HalfOpen;
        supMetrics().breakerState.set(
            static_cast<double>(static_cast<int>(state_)));
        fire(fired, SupervisorEventKind::BreakerHalfOpen, sample,
             static_cast<double>(breakerTrips_),
             strf("backoff elapsed after trip %zu, probing",
                  breakerTrips_));
        Status probe = attemptRecalibration(sample, fired);
        if (probe.isOk()) {
            state_ = BreakerState::Closed;
            consecutiveFailures_ = 0;
            supMetrics().breakerState.set(
                static_cast<double>(static_cast<int>(state_)));
            supMetrics().breakerClosed.inc();
            fire(fired, SupervisorEventKind::BreakerClosed, sample,
                 static_cast<double>(breakerTrips_),
                 "half-open probe succeeded");
        } else {
            ++breakerTrips_;
            state_ = BreakerState::Open;
            std::size_t backoff = backoffSamples();
            reopenAtSample_ = sample + backoff;
            supMetrics().breakerState.set(
                static_cast<double>(static_cast<int>(state_)));
            supMetrics().breakerOpen.inc();
            fire(fired, SupervisorEventKind::BreakerOpened, sample,
                 static_cast<double>(backoff),
                 strf("half-open probe failed (trip %zu, backoff "
                      "%zu samples): %s",
                      breakerTrips_, backoff,
                      probe.message().c_str()));
        }
        return fired;
    }

    // ---- Closed: act on recalibration recommendations ----
    bool recommended = false;
    for (const auto &ev : monitorEvents) {
        if (ev.kind == MonitorEventKind::RecalibrationRecommended) {
            recommended = true;
            break;
        }
    }
    if (!recommended)
        return fired;

    if (recalibrationsAttempted_ >= opts_.maxRecalibrations) {
        if (!budgetExhaustedNoted_) {
            budgetExhaustedNoted_ = true;
            fire(fired, SupervisorEventKind::RetryBudgetExhausted,
                 sample,
                 static_cast<double>(recalibrationsAttempted_),
                 strf("retry budget %zu spent; further "
                      "recommendations ignored",
                      opts_.maxRecalibrations));
            warnEvent("supervisor", "retry-budget-exhausted",
                      {{"attempts",
                        std::to_string(recalibrationsAttempted_)}});
        }
        return fired;
    }

    Status st = attemptRecalibration(sample, fired);
    if (st.isOk()) {
        consecutiveFailures_ = 0;
        return fired;
    }
    ++consecutiveFailures_;
    if (consecutiveFailures_ >= opts_.failureThreshold) {
        ++breakerTrips_;
        state_ = BreakerState::Open;
        std::size_t backoff = backoffSamples();
        reopenAtSample_ = sample + backoff;
        supMetrics().breakerState.set(
            static_cast<double>(static_cast<int>(state_)));
        supMetrics().breakerOpen.inc();
        fire(fired, SupervisorEventKind::BreakerOpened, sample,
             static_cast<double>(backoff),
             strf("%zu consecutive failures (trip %zu, backoff %zu "
                  "samples): %s",
                  consecutiveFailures_, breakerTrips_, backoff,
                  st.message().c_str()));
        warnEvent("supervisor", "breaker-opened",
                  {{"sample", std::to_string(sample)},
                   {"backoff", std::to_string(backoff)}});
    }
    return fired;
}

void
Supervisor::noteCheckpointWritten(std::size_t sample,
                                  std::uint64_t generation)
{
    std::vector<SupervisorEvent> sinkhole;
    supMetrics().checkpoints.inc();
    fire(sinkhole, SupervisorEventKind::CheckpointWritten, sample,
         static_cast<double>(generation),
         strf("generation %llu", (unsigned long long)generation));
}

SupervisorSummary
Supervisor::summary() const
{
    SupervisorSummary sum;
    sum.samples = lastSample_;
    sum.state = state_;
    sum.breakerTrips = breakerTrips_;
    sum.recalibrationsAttempted = recalibrationsAttempted_;
    sum.recalibrationsSucceeded = recalibrationsSucceeded_;
    sum.recalibrationsFailed = recalibrationsFailed_;
    sum.deadlineMisses = deadlineMisses_;
    for (const auto &ev : events_)
        ++sum.eventCounts[static_cast<int>(ev.kind)];
    return sum;
}

void
Supervisor::exportJsonl(std::ostream &out) const
{
    for (const auto &ev : events_)
        out << ev.toJson() << "\n";
    out << summary().toJson() << "\n";
}

void
Supervisor::serialize(std::ostream &out) const
{
    out << "supervisor_state 1\n";
    out << "breaker " << static_cast<int>(state_) << ' '
        << lastSample_ << ' ' << consecutiveFailures_ << ' '
        << breakerTrips_ << ' ' << reopenAtSample_ << "\n";
    out << "recal " << recalibrationsAttempted_ << ' '
        << recalibrationsSucceeded_ << ' ' << recalibrationsFailed_
        << ' ' << deadlineMisses_ << ' '
        << (budgetExhaustedNoted_ ? 1 : 0) << "\n";
    out << "events " << events_.size() << "\n";
    for (const auto &ev : events_) {
        out << "event " << static_cast<int>(ev.kind) << ' '
            << ev.sample << ' ';
        writeSerialDouble(out, ev.value);
        out << "\n";
        out << "detail " << ev.detail << "\n";
    }
}

Status
Supervisor::restore(std::istream &in)
{
    auto bad = [](const char *section) {
        return Status::corruptData(strf(
            "supervisor state: unreadable %s section", section));
    };

    if (!expectToken(in, "supervisor_state"))
        return bad("magic");
    int version = 0;
    in >> version;
    if (!in || version != 1) {
        return Status::corruptData(strf(
            "supervisor state: unsupported version %d", version));
    }

    int state = 0;
    std::size_t lastSample = 0, consecutive = 0, trips = 0,
                reopenAt = 0;
    if (!expectToken(in, "breaker"))
        return bad("breaker");
    in >> state >> lastSample >> consecutive >> trips >> reopenAt;
    if (!in || state < 0 || state > 2)
        return bad("breaker");

    std::size_t attempted = 0, succeeded = 0, failed = 0,
                misses = 0;
    int exhausted = 0;
    if (!expectToken(in, "recal"))
        return bad("recal");
    in >> attempted >> succeeded >> failed >> misses >> exhausted;
    if (!in)
        return bad("recal");

    std::size_t nEvents = 0;
    if (!expectToken(in, "events"))
        return bad("events");
    in >> nEvents;
    if (!in || nEvents > 1'000'000)
        return bad("events");
    std::vector<SupervisorEvent> events;
    events.reserve(nEvents);
    for (std::size_t i = 0; i < nEvents; ++i) {
        SupervisorEvent ev;
        int kind = -1;
        if (!expectToken(in, "event"))
            return bad("event");
        in >> kind >> ev.sample >> ev.value;
        if (!in || kind < 0 || kind >= numSupervisorEventKinds)
            return bad("event");
        ev.kind = static_cast<SupervisorEventKind>(kind);
        if (!expectToken(in, "detail"))
            return bad("event detail");
        if (in.get() != ' ' || !std::getline(in, ev.detail))
            return bad("event detail");
        events.push_back(std::move(ev));
    }

    state_ = static_cast<BreakerState>(state);
    lastSample_ = lastSample;
    consecutiveFailures_ = consecutive;
    breakerTrips_ = trips;
    reopenAtSample_ = reopenAt;
    recalibrationsAttempted_ = attempted;
    recalibrationsSucceeded_ = succeeded;
    recalibrationsFailed_ = failed;
    deadlineMisses_ = misses;
    budgetExhaustedNoted_ = exhausted != 0;
    events_ = std::move(events);

    supMetrics().events.inc(events_.size());
    supMetrics().breakerState.set(
        static_cast<double>(static_cast<int>(state_)));
    return Status::ok();
}

// ---------------------------------------------------------------
// Autopilot
// ---------------------------------------------------------------

namespace {

void
writeRngState(std::ostream &out, const char *tag,
              const RngState &st)
{
    out << tag;
    for (std::uint64_t s : st.s)
        out << ' ' << s;
    out << ' ' << (st.hasSpare ? 1 : 0) << ' ';
    writeSerialDouble(out, st.spare);
    out << "\n";
}

Status
readRngState(std::istream &in, const char *tag, RngState *st)
{
    if (!expectToken(in, tag)) {
        return Status::corruptData(
            strf("autopilot checkpoint: missing %s section", tag));
    }
    int hasSpare = 0;
    in >> st->s[0] >> st->s[1] >> st->s[2] >> st->s[3] >> hasSpare >>
        st->spare;
    if (!in) {
        return Status::corruptData(
            strf("autopilot checkpoint: unreadable %s state", tag));
    }
    st->hasSpare = hasSpare != 0;
    return Status::ok();
}

/** Serialize everything a resumed run needs into one body. */
Result<std::string>
buildCheckpointBody(ReplayContext &ctx,
                    const PredictionMonitor &monitor,
                    const Supervisor &supervisor,
                    std::size_t samplesDone)
{
    std::ostringstream body;
    body << "tomur_autopilot 1\n";
    body << "sample " << samplesDone << "\n";
    if (auto s = ctx.model->save(body); !s)
        return s.withContext("autopilot checkpoint");
    monitor.serialize(body);
    supervisor.serialize(body);
    writeRngState(body, "noise_rng", ctx.soloBed->noiseState());
    if (ctx.measureBed) {
        writeRngState(body, "fault_rng",
                      ctx.measureBed->faultRngState());
    } else {
        body << "fault_rng_absent\n";
    }
    return body.str();
}

/** Parse a checkpoint body back into the live objects. The RNG
 *  streams are restored LAST, so any draws made while rebuilding
 *  state (there are none today, but the ordering makes that a
 *  non-assumption) are overwritten by the checkpointed cursor. */
Result<std::size_t>
restoreFromBody(ReplayContext &ctx, PredictionMonitor &monitor,
                Supervisor &supervisor, const std::string &bodyStr)
{
    std::istringstream in(bodyStr);
    if (!expectToken(in, "tomur_autopilot")) {
        return Status::corruptData(
            "autopilot checkpoint: missing magic");
    }
    int version = 0;
    in >> version;
    if (!in || version != 1) {
        return Status::corruptData(strf(
            "autopilot checkpoint: unsupported version %d",
            version));
    }
    std::size_t samplesDone = 0;
    if (!expectToken(in, "sample"))
        return Status::corruptData(
            "autopilot checkpoint: missing sample cursor");
    in >> samplesDone;
    if (!in)
        return Status::corruptData(
            "autopilot checkpoint: unreadable sample cursor");

    TomurModel model;
    if (auto s = model.load(in); !s)
        return s.withContext("autopilot checkpoint model");
    if (auto s = monitor.restore(in); !s)
        return s.withContext("autopilot checkpoint");
    if (auto s = supervisor.restore(in); !s)
        return s.withContext("autopilot checkpoint");

    RngState noise;
    if (auto s = readRngState(in, "noise_rng", &noise); !s)
        return s;
    bool haveFault = false;
    RngState fault;
    {
        std::streampos mark = in.tellg();
        std::string tag;
        in >> tag;
        if (tag == "fault_rng_absent") {
            haveFault = false;
        } else if (tag == "fault_rng") {
            in.seekg(mark);
            if (auto s = readRngState(in, "fault_rng", &fault); !s)
                return s;
            haveFault = true;
        } else {
            return Status::corruptData(
                "autopilot checkpoint: missing fault_rng section");
        }
    }
    if (haveFault != (ctx.measureBed != nullptr)) {
        return Status::failedPrecondition(
            "autopilot checkpoint: measurement-path mismatch "
            "(checkpoint and context disagree about fault "
            "injection)");
    }

    *ctx.model = std::move(model);
    ctx.soloBed->setNoiseState(noise);
    if (ctx.measureBed)
        ctx.measureBed->setFaultRngState(fault);
    return samplesDone;
}

} // namespace

Result<AutopilotResult>
runAutopilot(ReplayContext &ctx,
             const std::vector<ScheduleStep> &schedule,
             PredictionMonitor &monitor, Supervisor &supervisor,
             CheckpointStore *store, const AutopilotOptions &opts)
{
    if (!ctx.trainer || !ctx.model || !ctx.nf || !ctx.soloBed)
        panic("runAutopilot: incomplete context");
    TraceSpan span("supervisor.autopilot");
    span.field("label", ctx.label);
    span.field("steps",
               static_cast<std::uint64_t>(schedule.size()));

    // Resolve workloads and flatten the schedule into one entry per
    // sample, so the checkpoint cursor is a single index. Pre-profile
    // the whole schedule smallest-flow-count-first so the trainer's
    // incremental profiling session warms each flow once; the cache
    // then serves the in-order loop below.
    {
        std::vector<traffic::TrafficProfile> profiles;
        profiles.reserve(schedule.size());
        for (const auto &step : schedule)
            profiles.push_back(step.profile);
        ctx.trainer->prewarmWorkloads(*ctx.nf, std::move(profiles));
    }
    std::vector<std::vector<framework::WorkloadProfile>> deployments;
    std::vector<std::vector<framework::WorkloadProfile>> solos;
    std::vector<std::size_t> stepOfSample;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const auto &w =
            ctx.trainer->workloadOf(*ctx.nf, schedule[i].profile);
        std::vector<framework::WorkloadProfile> deploy = {w};
        deploy.insert(deploy.end(), ctx.competitors.begin(),
                      ctx.competitors.end());
        deployments.push_back(deploy);
        solos.push_back({w});
        for (int r = 0; r < schedule[i].repeats; ++r)
            stepOfSample.push_back(i);
    }
    const std::size_t total = stepOfSample.size();

    // ---- Resume ----
    std::size_t startSample = 0;
    if (opts.resume && store != nullptr) {
        auto rec = store->loadLatestValid();
        if (rec.isOk()) {
            auto cursor = restoreFromBody(
                ctx, monitor, supervisor, rec.value().body);
            if (!cursor.isOk())
                return cursor.status();
            startSample = cursor.value();
            if (startSample > total) {
                return Status::failedPrecondition(strf(
                    "autopilot checkpoint is %zu samples in but "
                    "the schedule only has %zu",
                    startSample, total));
            }
            span.field("resumed_at",
                       static_cast<std::uint64_t>(startSample));
            inform(strf("autopilot: resumed at sample %zu from "
                        "checkpoint generation %llu",
                        startSample,
                        (unsigned long long)
                            rec.value().generation));
        } else if (rec.status().code() != StatusCode::NotFound) {
            // Corrupt beyond recovery is an error; an empty store
            // just means nothing to resume from.
            return rec.status();
        }
    }

    // Re-apply the deterministic drift bias when resuming past its
    // activation point (setConfig keeps the fault-draw stream, and
    // the checkpointed fault RNG state was restored above anyway).
    if (ctx.measureBed && opts.replay.biasAtSample >= 0 &&
        static_cast<long>(startSample) >
            opts.replay.biasAtSample) {
        auto cfg = ctx.measureBed->faultConfig();
        cfg.biasFactor = opts.replay.biasFactor;
        ctx.measureBed->setConfig(cfg);
    }

    // Prewarm the equilibrium solves across the pool (consumes no
    // RNG, so it cannot perturb resume determinism).
    ctx.soloBed->prewarm(solos);
    sim::Testbed &measure =
        ctx.measureBed
            ? static_cast<sim::Testbed &>(*ctx.measureBed)
            : *ctx.soloBed;
    measure.prewarm(deployments);

    // ---- Serial supervised replay ----
    // Profiler sites are registered once, outside the loop, so the
    // per-sample cost on the unsampled path is one countdown
    // decrement per phase.
    SamplingProfiler *prof = opts.profiler;
    int siteSolve = prof ? prof->registerSite("solve") : 0;
    int sitePredict = prof ? prof->registerSite("predict") : 0;
    int siteMeasure = prof ? prof->registerSite("measure") : 0;
    int siteIngest = prof ? prof->registerSite("ingest") : 0;
    int siteSupervise = prof ? prof->registerSite("supervise") : 0;
    int siteCheckpoint = prof ? prof->registerSite("checkpoint") : 0;
    bool stoppedEarly = false;
    std::size_t sample0 = startSample;
    for (; sample0 < total; ++sample0) {
        if (opts.stopRequested && opts.stopRequested()) {
            // Cooperative stop (SIGTERM/SIGINT via the CLI): persist
            // a final checkpoint at the current cursor so a resumed
            // run continues exactly where this one left off, then
            // return cleanly instead of dying mid-generation.
            stoppedEarly = true;
            if (store != nullptr) {
                supervisor.noteCheckpointWritten(
                    sample0, store->nextGeneration());
                auto body = buildCheckpointBody(ctx, monitor,
                                                supervisor, sample0);
                if (!body.isOk())
                    return body.status();
                Status wrote = store->writeGeneration(body.value());
                if (!wrote.isOk()) {
                    warnEvent(
                        "autopilot", "final-checkpoint-failed",
                        {{"sample", std::to_string(sample0)},
                         {"error", wrote.message()}});
                }
            }
            inform(strf("autopilot: stop requested at sample %zu/"
                        "%zu; final checkpoint written",
                        sample0, total));
            break;
        }
        checkDeadline("supervisor.autopilot");
        if (opts.beforeSample)
            opts.beforeSample(sample0);
        const std::size_t i = stepOfSample[sample0];
        const auto &step = schedule[i];
        const auto &w = deployments[i][0];

        if (ctx.measureBed && opts.replay.biasAtSample >= 0 &&
            static_cast<long>(sample0) == opts.replay.biasAtSample) {
            auto cfg = ctx.measureBed->faultConfig();
            cfg.biasFactor = opts.replay.biasFactor;
            ctx.measureBed->setConfig(cfg);
        }

        // Noise-free solo baseline: consumes no RNG draws, so the
        // only noise consumer in the loop is the measured co-run —
        // exactly one batch per sample, which is what the
        // checkpointed RNG cursor assumes.
        std::vector<sim::Measurement> soloMs;
        {
            SamplingProfiler::Scope scope(prof, siteSolve);
            soloMs = ctx.soloBed->solveNoiseFree(solos[i]);
        }
        double solo =
            soloMs.empty() ? 0.0 : soloMs[0].truthThroughput;
        PredictionBreakdown breakdown;
        {
            SamplingProfiler::Scope scope(prof, sitePredict);
            breakdown = ctx.model->predictDetailed(
                ctx.levels, step.profile, solo);
        }

        double measured = std::numeric_limits<double>::quiet_NaN();
        {
            SamplingProfiler::Scope scope(prof, siteMeasure);
            auto ms = measure.run(deployments[i]);
            for (const auto &m : ms) {
                if (m.nfName == w.nfName) {
                    measured = m.throughput;
                    break;
                }
            }
        }

        std::vector<MonitorEvent> fired;
        {
            SamplingProfiler::Scope scope(prof, siteIngest);
            fired = monitor.ingest(makeMonitorSample(
                ctx.label, step.profile, breakdown, measured));
        }
        std::vector<SupervisorEvent> supEvents;
        {
            SamplingProfiler::Scope scope(prof, siteSupervise);
            supEvents = supervisor.observe(sample0 + 1, fired);
        }
        for (const auto &ev : supEvents) {
            if (ev.kind == SupervisorEventKind::BreakerOpened) {
                // While the breaker is open, predictions must not
                // trust the known-bad model: quarantine it so the
                // PR 1 fallback chain serves solo-hint passthrough
                // (confidence <= 0.25) until a probe retrains it.
                ctx.model->markMemoryDegraded(
                    "circuit breaker open: " + ev.detail);
            }
        }

        if (store != nullptr && opts.checkpointEverySamples > 0 &&
            (sample0 + 1) % opts.checkpointEverySamples == 0) {
            SamplingProfiler::Scope scope(prof, siteCheckpoint);
            // The CHECKPOINT_WRITTEN event goes in *before* the body
            // is serialized, so the generation carries its own event
            // and a resumed export replays the identical stream.
            supervisor.noteCheckpointWritten(
                sample0 + 1, store->nextGeneration());
            auto body = buildCheckpointBody(ctx, monitor,
                                            supervisor, sample0 + 1);
            if (!body.isOk())
                return body.status();
            Status wrote = store->writeGeneration(body.value());
            if (!wrote.isOk()) {
                warnEvent("autopilot", "checkpoint-write-failed",
                          {{"sample", std::to_string(sample0 + 1)},
                           {"error", wrote.message()}});
            }
        }
    }

    AutopilotResult res;
    res.samples = total;
    res.startSample = startSample;
    res.stoppedEarly = stoppedEarly;
    res.stoppedAtSample = sample0;
    res.monitorSummary = monitor.summary();
    res.supervisorSummary = supervisor.summary();
    return res;
}

} // namespace tomur::core
