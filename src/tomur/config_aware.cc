#include "tomur/config_aware.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tomur::core {

namespace fw = framework;

ConfigAwareModel
ConfigAwareModel::train(TomurTrainer &trainer,
                        const NfFactory &factory,
                        const ConfigAttribute &attr,
                        const traffic::TrafficProfile &defaults,
                        const ConfigAwareOptions &opts)
{
    if (!factory)
        fatal("ConfigAwareModel: missing factory");
    if (attr.min >= attr.max)
        fatal("ConfigAwareModel: bad attribute range");

    ConfigAwareModel model;
    model.attr_ = attr;

    auto &bed = trainer.library().testbed();
    std::map<double, double> solo_cache;
    auto solo_at = [&](double v) {
        auto it = solo_cache.find(v);
        if (it != solo_cache.end())
            return it->second;
        auto nf = factory(v);
        double t =
            bed.runSolo(trainer.workloadOf(*nf, defaults))
                .truthThroughput;
        solo_cache[v] = t;
        return t;
    };

    // Pruning (Algorithm 1, applied to the configuration axis): if
    // the extremes behave alike, one model covers the whole range.
    double t_min = solo_at(attr.min);
    double t_max = solo_at(attr.max);
    double ref = std::max(t_min, t_max);
    std::vector<double> picked = {attr.min};
    if (ref > 0.0 &&
        std::fabs(t_max - t_min) / ref >= opts.eps0) {
        picked.push_back(attr.max);
        // Breadth-first bisection on the configuration axis.
        struct Range
        {
            double lo, hi;
        };
        std::vector<Range> frontier = {{attr.min, attr.max}};
        while (!frontier.empty() &&
               static_cast<int>(picked.size()) <
                   opts.maxConfigPoints) {
            std::vector<Range> next;
            for (const auto &r : frontier) {
                if (static_cast<int>(picked.size()) >=
                    opts.maxConfigPoints) {
                    break;
                }
                double lo = solo_at(r.lo);
                double hi = solo_at(r.hi);
                double rr = std::max(lo, hi);
                if (rr <= 0.0 ||
                    std::fabs(hi - lo) / rr < opts.eps1) {
                    continue;
                }
                double mid = 0.5 * (r.lo + r.hi);
                picked.push_back(mid);
                next.push_back({r.lo, mid});
                next.push_back({mid, r.hi});
            }
            frontier = std::move(next);
        }
    }

    std::sort(picked.begin(), picked.end());
    for (double v : picked) {
        auto nf = factory(v);
        model.anchors_.emplace(
            v, trainer.train(*nf, defaults, opts.train));
    }
    return model;
}

std::vector<double>
ConfigAwareModel::anchorValues() const
{
    std::vector<double> out;
    for (const auto &[v, m] : anchors_)
        out.push_back(v);
    return out;
}

double
ConfigAwareModel::predict(
    double config_value,
    const std::vector<ContentionLevel> &competitors,
    const traffic::TrafficProfile &profile, double solo_hint) const
{
    if (anchors_.empty())
        panic("ConfigAwareModel::predict before train");
    // Locate the bracketing anchors.
    auto upper = anchors_.lower_bound(config_value);
    if (upper == anchors_.begin()) {
        return upper->second.predict(competitors, profile,
                                     solo_hint);
    }
    if (upper == anchors_.end()) {
        return std::prev(upper)->second.predict(competitors, profile,
                                                solo_hint);
    }
    auto lower = std::prev(upper);
    double span = upper->first - lower->first;
    double w = span > 0.0 ? (config_value - lower->first) / span
                          : 0.0;
    // The solo hint applies to the queried configuration; anchors
    // predict without it and the interpolation is rescaled when a
    // hint is available.
    double p_lo = lower->second.predict(competitors, profile);
    double p_hi = upper->second.predict(competitors, profile);
    double blended = (1.0 - w) * p_lo + w * p_hi;
    if (solo_hint > 0.0) {
        double s_lo = lower->second.soloThroughput(profile);
        double s_hi = upper->second.soloThroughput(profile);
        double s_blend = (1.0 - w) * s_lo + w * s_hi;
        if (s_blend > 0.0)
            blended *= solo_hint / s_blend;
    }
    return blended;
}

} // namespace tomur::core
