/**
 * @file
 * Prediction-quality observatory: online accuracy and drift
 * monitoring for a deployed model (the layer §7.5's traffic-awareness
 * claim needs in production — "is the model still right?").
 *
 * PredictionMonitor ingests a stream of (deployment, traffic,
 * predicted, measured) samples and maintains rolling error
 * statistics: an EWMA of the absolute relative error, windowed
 * p50/p90/p99 (computed through the telemetry Histogram over the
 * most recent window), and the degraded-path rate carried over from
 * PredictionBreakdown. Two online detectors watch the stream:
 *
 *  - a two-sided Page–Hinkley test on the *signed* relative error.
 *    A systematic constant model error does not trip it (the test
 *    tracks deviations from its own running mean); a shift in the
 *    error's level — the signature of model drift — does, within a
 *    bounded number of samples.
 *  - a traffic-shift detector on the attribute deltas (flow count,
 *    packet size, MTBR) against per-attribute EWMA baselines.
 *
 * Detections surface three ways at once: structured MonitorEvents
 * (DRIFT_DETECTED, ACCURACY_DEGRADED, TRAFFIC_SHIFT,
 * RECALIBRATION_RECOMMENDED, ACCURACY_RECOVERED) retained in order
 * and exportable as JSONL, `monitor.event` trace points, and
 * `tomur_monitor_*` metrics.
 *
 * Time-to-recovery is a first-class metric: every regime change
 * (TRAFFIC_SHIFT or DRIFT_DETECTED) opens a recovery window, and
 * when the error EWMA then holds below recoveredFactor *
 * accuracyThreshold for recoveryStableSamples consecutive valid
 * samples, an ACCURACY_RECOVERED event fires whose value is the
 * span in samples since the (latest) regime change — also observed
 * into the `tomur_recovery_samples` histogram and rolled up in the
 * summary trailer.
 *
 * Determinism contract: ingest() is a pure fold over the sample
 * stream — no wall clock, no RNG, deterministic double formatting —
 * so a width-invariant sample stream (everything the testbed and
 * trainer produce under the PR-2 contracts) yields a byte-identical
 * event stream at any TOMUR_THREADS. The golden fixture
 * tests/golden/monitor_events.jsonl pins exactly this.
 */

#ifndef TOMUR_TOMUR_MONITOR_HH
#define TOMUR_TOMUR_MONITOR_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hh"
#include "common/telemetry.hh"
#include "sim/faults.hh"
#include "tomur/attribution.hh"
#include "tomur/profiler.hh"
#include "traffic/synth.hh"

namespace tomur::core {

/** One live (prediction, measurement) pair. */
struct MonitorSample
{
    std::string deployment;          ///< deployment label
    traffic::TrafficProfile profile; ///< traffic at measure time
    double predicted = 0.0;
    double measured = 0.0;
    /** Carried from the prediction's attribution. */
    double confidence = 1.0;
    bool degraded = false;
    std::string bottleneck; ///< top attributed resource (may be "")
};

/** Build a sample from a prediction breakdown and a measurement. */
MonitorSample makeMonitorSample(const std::string &deployment,
                                const traffic::TrafficProfile &p,
                                const PredictionBreakdown &breakdown,
                                double measured);

/** Event kinds the monitor emits. */
enum class MonitorEventKind
{
    DriftDetected,             ///< Page–Hinkley tripped
    AccuracyDegraded,          ///< error EWMA crossed the threshold
    TrafficShift,              ///< attribute delta vs baseline
    RecalibrationRecommended,  ///< drift + degraded accuracy
    AccuracyRecovered,         ///< regime-change window closed
};

constexpr int numMonitorEventKinds = 5;

/** Wire name ("DRIFT_DETECTED", ...). */
const char *monitorEventName(MonitorEventKind kind);

/** One structured monitor event. */
struct MonitorEvent
{
    MonitorEventKind kind = MonitorEventKind::DriftDetected;
    std::size_t sample = 0; ///< 1-based ingest index that fired it
    std::string deployment;
    double value = 0.0;     ///< detector statistic at the trip
    double threshold = 0.0; ///< its trip level
    std::string detail;     ///< human-readable context

    /** One JSONL line (deterministic formatting). */
    std::string toJson() const;
};

/** Detector tuning. The defaults hold for relative errors in the
 *  few-percent range (the trained models' regime). */
struct MonitorOptions
{
    /** EWMA smoothing for the absolute relative error. */
    double ewmaAlpha = 0.1;
    /** Recent samples kept for the windowed percentiles. */
    std::size_t window = 256;
    /** Samples before any detector may fire (warm-up). */
    std::size_t minSamples = 8;
    /** Page–Hinkley magnitude tolerance (drift below it ignored). */
    double phDelta = 0.005;
    /** Page–Hinkley trip level on the cumulative deviation. */
    double phLambda = 0.5;
    /** EWMA |relative error| above this is degraded accuracy. */
    double accuracyThreshold = 0.15;
    /** Relative attribute delta vs its baseline that counts as a
     *  traffic shift. */
    double trafficShiftFactor = 0.5;
    /** EWMA smoothing for the traffic-attribute baselines. */
    double trafficAlpha = 0.2;
    /** Minimum samples between two events of the same kind. */
    std::size_t cooldown = 16;
    /** A recovery window closes once the error EWMA holds below
     *  recoveredFactor * accuracyThreshold... */
    double recoveredFactor = 0.8;
    /** ...for this many consecutive valid samples. */
    std::size_t recoveryStableSamples = 4;
    /** Bucket layout for the error histogram/percentiles (empty:
     *  exponential 0.005 .. 2.56). */
    std::vector<double> errorBounds;
};

/** Rolling summary (also the JSONL trailer of an event stream). */
struct MonitorSummary
{
    std::size_t samples = 0;
    std::size_t invalidSamples = 0;  ///< non-finite/zero measured
    std::size_t degradedSamples = 0; ///< degraded prediction path
    double degradedRate = 0.0;
    double ewmaAbsError = 0.0;
    double meanAbsError = 0.0;
    double p50 = 0.0, p90 = 0.0, p99 = 0.0; ///< windowed |rel err|
    std::size_t eventCounts[numMonitorEventKinds] = {};

    // Time-to-recovery rollup (spans in samples).
    std::size_t recoveries = 0;
    double meanRecoverySamples = 0.0;
    std::size_t maxRecoverySamples = 0;
    bool recoveryOpen = false; ///< a regime change is unrecovered

    std::string toJson() const;
};

/**
 * Interpolated quantile off a Histogram snapshot (Prometheus-style:
 * linear within the bucket that crosses the target rank; the +Inf
 * bucket reports the last finite bound). q in [0, 1].
 */
double histogramQuantile(const Histogram::Snapshot &snap, double q);

/**
 * The online monitor. Not thread-safe by design: samples arrive in
 * deployment order and the fold over them must be deterministic, so
 * one owner ingests serially (parallelism lives below, in how the
 * samples were produced).
 */
class PredictionMonitor
{
  public:
    explicit PredictionMonitor(MonitorOptions opts = {});

    /**
     * Ingest one sample. Returns the events this sample fired (also
     * retained in events()); emits trace points and metrics as a
     * side effect. Samples with a non-finite or non-positive
     * measured throughput update counts only (a faulted measurement
     * must not poison the detectors).
     */
    std::vector<MonitorEvent> ingest(const MonitorSample &sample);

    /** Every event fired so far, in ingest order. */
    const std::vector<MonitorEvent> &events() const
    {
        return events_;
    }

    MonitorSummary summary() const;

    /** All events as JSONL, then one summary trailer line. */
    void exportJsonl(std::ostream &out) const;

    /**
     * Write the complete detector state (rolling statistics,
     * Page–Hinkley accumulators, traffic baselines, cooldowns, and
     * the retained event list) so a restored monitor continues the
     * fold — and re-exports the full event stream — exactly as if
     * the process had never died. Options and the event sink are NOT
     * serialized; construct the restored monitor with the same
     * MonitorOptions and re-attach any sink.
     */
    void serialize(std::ostream &out) const;

    /**
     * Restore state written by serialize(). Parses into temporaries
     * and commits only on success; re-applies sample/event counts to
     * the process-wide counters (histogram refill is skipped — the
     * registry histogram is cumulative observability, not part of
     * the deterministic fold).
     */
    Status restore(std::istream &in);

    /** Also write each event (and nothing else) to this stream as
     *  it fires; pass nullptr to detach. */
    void setEventSink(std::ostream *sink) { sink_ = sink; }

    const MonitorOptions &options() const { return opts_; }

  private:
    void fire(std::vector<MonitorEvent> &out, MonitorEventKind kind,
              const MonitorSample &s, double value, double threshold,
              std::string detail);
    void resetDriftDetector();

    MonitorOptions opts_;
    std::ostream *sink_ = nullptr;
    std::vector<MonitorEvent> events_;

    // Rolling error state.
    std::size_t samples_ = 0;
    std::size_t invalid_ = 0;
    std::size_t degraded_ = 0;
    std::size_t errorSamples_ = 0;
    double ewmaAbsErr_ = 0.0;
    double sumAbsErr_ = 0.0;
    std::deque<double> window_;
    bool accuracyAlarm_ = false;

    // Page–Hinkley state (two-sided, on the signed relative error).
    std::size_t phN_ = 0;
    double phMean_ = 0.0;
    double phUp_ = 0.0, phUpMin_ = 0.0;
    double phDown_ = 0.0, phDownMax_ = 0.0;
    std::size_t driftsSinceRecal_ = 0;

    // Traffic baselines (EWMA per attribute; <0 = uninitialized).
    double trafficBase_[traffic::numAttributes];
    std::size_t trafficSamples_ = 0;

    // Per-kind cooldown bookkeeping (sample index of last event).
    std::size_t lastFired_[numMonitorEventKinds];

    // Recovery window (regime change -> recovered accuracy). A new
    // regime change while a window is open restarts the clock: the
    // span measures from the *latest* regime change.
    bool recoveryOpen_ = false;
    std::size_t recoveryStartSample_ = 0;
    int recoveryTriggerKind_ = 0;
    std::size_t recoveryStable_ = 0;
    std::size_t recoveries_ = 0;
    double sumRecoverySamples_ = 0.0;
    std::size_t maxRecoverySamples_ = 0;

    // Metrics (looked up once; registration is the only lock).
    Counter &mSamples_;
    Counter &mInvalid_;
    Counter &mDegraded_;
    Counter &mEvents_;
    Counter *mKind_[numMonitorEventKinds];
    Gauge &mEwma_;
    Histogram &mErrHist_;
    Histogram &mRecoveryHist_;
};

// ---------------------------------------------------------------
// Schedule replay (the CLI `monitor` command and the golden tests)
// ---------------------------------------------------------------

/** One step of a replayed traffic schedule. */
struct ScheduleStep
{
    traffic::TrafficProfile profile;
    int repeats = 1;
};

/**
 * Parse a schedule file: one "flows size mtbr repeats" line per
 * step, '#' comments and blank lines ignored.
 */
Result<std::vector<ScheduleStep>> parseSchedule(std::istream &in);

/** Built-in demo schedule: a stationary phase at `base`, then a
 *  flow-count shift, then back — enough to exercise every event. */
std::vector<ScheduleStep>
defaultSchedule(const traffic::TrafficProfile &base);

/** Lower a synthesized scenario (traffic/synth) onto the replayable
 *  schedule machinery. */
std::vector<ScheduleStep>
toSchedule(const std::vector<traffic::SynthStep> &steps);

/** Everything a replay needs about the deployment under watch. */
struct ReplayContext
{
    TomurTrainer *trainer = nullptr;
    TomurModel *model = nullptr;
    framework::NetworkFunction *nf = nullptr;
    /** Competitor contention levels (model input). */
    std::vector<ContentionLevel> levels;
    /** Competitor workloads (deployed alongside the target). */
    std::vector<framework::WorkloadProfile> competitors;
    /** Clean testbed for solo baselines (and measurement when
     *  measureBed is null). */
    sim::Testbed *soloBed = nullptr;
    /** Measurement path; may inject faults and carries the
     *  deterministic drift bias. Null: measure on soloBed. */
    sim::FaultInjectingTestbed *measureBed = nullptr;
    std::string label; ///< deployment label on every sample
};

/** Replay options. */
struct ReplayOptions
{
    /** 0-based sample index at which the measurement path's
     *  deterministic throughput bias switches on (simulated model
     *  drift); negative = never. Requires measureBed. */
    long biasAtSample = -1;
    double biasFactor = 0.7;
};

/** Replay outcome. */
struct ReplayResult
{
    std::size_t samples = 0;
    std::size_t events = 0;
    MonitorSummary summary;
};

/**
 * Replay a traffic schedule through the monitor: per step, deploy
 * the target (at the step's traffic) with the fixed competitors,
 * measure, predict, and ingest. Solves are prewarmed across the
 * pool; measurement and ingest stay in schedule order, so the event
 * stream is deterministic at any TOMUR_THREADS width.
 */
ReplayResult replaySchedule(ReplayContext &ctx,
                            const std::vector<ScheduleStep> &schedule,
                            PredictionMonitor &monitor,
                            const ReplayOptions &opts = {});

} // namespace tomur::core

#endif // TOMUR_TOMUR_MONITOR_HH
