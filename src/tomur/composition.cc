#include "tomur/composition.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tomur::core {

namespace fw = framework;

double
compose(CompositionKind kind, fw::ExecutionPattern pattern,
        double t_solo, const std::vector<double> &drops)
{
    if (t_solo <= 0.0)
        fatal("compose: non-positive solo throughput");
    double result;
    switch (kind) {
      case CompositionKind::Sum: {
        double total = 0.0;
        for (double d : drops)
            total += std::max(0.0, d);
        result = t_solo - total;
        break;
      }
      case CompositionKind::Min: {
        // "Min composition" keeps the minimal predicted throughput,
        // i.e. subtracts the largest single-resource drop.
        double worst = 0.0;
        for (double d : drops)
            worst = std::max(worst, d);
        result = t_solo - worst;
        break;
      }
      case CompositionKind::ExecutionPattern: {
        if (pattern == fw::ExecutionPattern::Pipeline) {
            // Eq. 3: the slowest stage rules.
            double worst = 0.0;
            for (double d : drops)
                worst = std::max(worst, d);
            result = t_solo - worst;
        } else {
            // Eq. 4: sojourn times add up.
            double inv = 0.0;
            int r = 0;
            for (double d : drops) {
                double t_k = t_solo - std::max(0.0, d);
                t_k = std::max(t_k, 1e-6 * t_solo);
                inv += 1.0 / t_k;
                ++r;
            }
            if (r == 0)
                return t_solo;
            double denom = inv - (r - 1) / t_solo;
            result = denom > 0.0 ? 1.0 / denom : 0.0;
        }
        break;
      }
      default:
        panic("compose: bad kind");
    }
    return std::clamp(result, 0.0, t_solo);
}

fw::ExecutionPattern
detectPattern(const std::vector<PatternObservation> &observations)
{
    if (observations.empty())
        fatal("detectPattern: no observations");
    double err_pl = 0.0, err_rtc = 0.0;
    for (const auto &o : observations) {
        if (o.measuredThroughput <= 0.0 || o.soloThroughput <= 0.0)
            fatal("detectPattern: non-positive throughput");
        double p = compose(CompositionKind::ExecutionPattern,
                           fw::ExecutionPattern::Pipeline,
                           o.soloThroughput, o.drops);
        double r = compose(CompositionKind::ExecutionPattern,
                           fw::ExecutionPattern::RunToCompletion,
                           o.soloThroughput, o.drops);
        err_pl += std::fabs(p - o.measuredThroughput) /
                  o.measuredThroughput;
        err_rtc += std::fabs(r - o.measuredThroughput) /
                   o.measuredThroughput;
    }
    return err_pl <= err_rtc ? fw::ExecutionPattern::Pipeline
                             : fw::ExecutionPattern::RunToCompletion;
}

} // namespace tomur::core
