/**
 * @file
 * Configuration-aware prediction (the paper's §8 future work).
 *
 * An NF's deployment configuration (tunnel MTU, table sizes, rule
 * counts, ...) changes its performance characteristics just like
 * traffic attributes do. Following the paper's suggestion —
 * "extracting configuration attributes for an NF and integrating it
 * into the per-resource models" — this module trains one TomurModel
 * per profiled configuration point and interpolates between them,
 * reusing Algorithm-1-style pruning/bisection to pick which
 * configuration values to profile.
 */

#ifndef TOMUR_TOMUR_CONFIG_AWARE_HH
#define TOMUR_TOMUR_CONFIG_AWARE_HH

#include <functional>
#include <map>
#include <memory>

#include "tomur/profiler.hh"

namespace tomur::core {

/** A one-dimensional configuration attribute of an NF family. */
struct ConfigAttribute
{
    std::string name;
    double min = 0.0;
    double max = 0.0;
};

/** Options for configuration-aware training. */
struct ConfigAwareOptions
{
    /** Relative solo-throughput change below which the NF is
     *  declared configuration-insensitive (one model suffices). */
    double eps0 = 0.05;
    /** Relative change below which a config sub-range stops being
     *  refined. */
    double eps1 = 0.04;
    /** Maximum configuration points profiled (models trained). */
    int maxConfigPoints = 5;
    /** Per-configuration-point training options. */
    TrainOptions train{};
};

/**
 * A family of models over one configuration attribute.
 */
class ConfigAwareModel
{
  public:
    /** Factory building an NF instance at a configuration value. */
    using NfFactory =
        std::function<std::unique_ptr<framework::NetworkFunction>(
            double config_value)>;

    /**
     * Profile and train across the configuration range.
     *
     * Configuration values are chosen adaptively: the range is
     * bisected where solo throughput changes, up to
     * opts.maxConfigPoints trained anchor models.
     */
    static ConfigAwareModel
    train(TomurTrainer &trainer, const NfFactory &factory,
          const ConfigAttribute &attr,
          const traffic::TrafficProfile &defaults,
          const ConfigAwareOptions &opts = {});

    /**
     * Predict throughput at an arbitrary configuration value:
     * predictions of the two nearest anchor models are linearly
     * interpolated in the configuration coordinate.
     */
    double
    predict(double config_value,
            const std::vector<ContentionLevel> &competitors,
            const traffic::TrafficProfile &profile,
            double solo_hint = -1.0) const;

    /** Configuration values with trained anchor models. */
    std::vector<double> anchorValues() const;

    /** True when pruning found the NF configuration-insensitive. */
    bool configInsensitive() const { return anchors_.size() <= 1; }

    const ConfigAttribute &attribute() const { return attr_; }

  private:
    ConfigAttribute attr_;
    std::map<double, TomurModel> anchors_;
};

} // namespace tomur::core

#endif // TOMUR_TOMUR_CONFIG_AWARE_HH
