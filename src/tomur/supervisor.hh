/**
 * @file
 * Self-healing supervisor: acts on the PredictionMonitor's events.
 *
 * PR 4 gave deployments eyes (DRIFT_DETECTED / ACCURACY_DEGRADED /
 * RECALIBRATION_RECOMMENDED events); this layer gives them hands. A
 * Supervisor consumes each sample's monitor events and drives model
 * recalibration through a circuit breaker:
 *
 *            RECALIBRATION_RECOMMENDED
 *   CLOSED ----------------------------> attempt retrain
 *     ^  \                                 |success: stay CLOSED
 *     |   \  failureThreshold consecutive  |
 *     |    `-- failures ----------------> OPEN  (serve degraded
 *     |                                    |     predictions via the
 *     | probe succeeds                     |     PR 1 fallback chain)
 *     |                                    | backoff samples elapse
 *   HALF-OPEN <----------------------------'
 *     | probe fails: re-OPEN with doubled backoff
 *
 * Determinism contract: the decision path reads no wall clock and no
 * RNG — backoff is measured in *sample indices* and every transition
 * is a pure function of (options, sample stream, recalibration
 * outcomes). With a deterministic recalibration function (the PR 2
 * trainer contracts), the supervisor event stream is width-invariant
 * and byte-identical across crash/resume, which the autopilot golden
 * fixture pins.
 *
 * Deadline handling: a recalibration that throws DeadlineExceeded is
 * counted as a deadline miss AND a failure (a trainer that cannot
 * finish inside its budget is as unhealthy as one that produces a
 * degraded model). SimulatedCrash always propagates — a crash must
 * kill the run, that is the point of injecting it.
 *
 * runAutopilot() is the resumable driver tying it all together:
 * schedule replay -> monitor -> supervisor -> periodic checkpoints,
 * with exact-stream resume from a CheckpointStore generation.
 */

#ifndef TOMUR_TOMUR_SUPERVISOR_HH
#define TOMUR_TOMUR_SUPERVISOR_HH

#include <functional>
#include <iosfwd>

#include "common/checkpoint.hh"
#include "common/sampler.hh"
#include "tomur/monitor.hh"

namespace tomur::core {

/** Circuit-breaker states. */
enum class BreakerState
{
    Closed,   ///< healthy: recommendations trigger recalibration
    Open,     ///< tripped: serve degraded, wait out the backoff
    HalfOpen, ///< transient: one probe decides re-open vs close
};

/** Wire name ("closed", "open", "half-open"). */
const char *breakerStateName(BreakerState s);

/** Event kinds the supervisor emits. */
enum class SupervisorEventKind
{
    RecalibrationStarted,
    RecalibrationSucceeded,
    RecalibrationFailed,
    BreakerOpened,
    BreakerHalfOpen,
    BreakerClosed,
    DeadlineMissed,
    RetryBudgetExhausted,
    CheckpointWritten,
};

constexpr int numSupervisorEventKinds = 9;

/** Wire name ("RECALIBRATION_STARTED", ...). */
const char *supervisorEventName(SupervisorEventKind kind);

/** One structured supervisor event (JSONL-exportable). */
struct SupervisorEvent
{
    SupervisorEventKind kind =
        SupervisorEventKind::RecalibrationStarted;
    std::size_t sample = 0; ///< 1-based sample index that fired it
    double value = 0.0;     ///< kind-specific statistic
    std::string detail;

    std::string toJson() const;
};

/** Breaker / retry tuning. All windows are sample counts, never
 *  wall-clock, to keep the event stream deterministic. */
struct SupervisorOptions
{
    /** Consecutive recalibration failures that open the breaker. */
    std::size_t failureThreshold = 2;
    /** Samples the breaker stays open after its first trip. */
    std::size_t baseBackoffSamples = 8;
    /** Backoff multiplier per successive trip. */
    double backoffFactor = 2.0;
    /** Backoff ceiling (samples). */
    std::size_t maxBackoffSamples = 64;
    /** Total recalibration attempts allowed (the retry budget);
     *  0 disables recalibration entirely. */
    std::size_t maxRecalibrations = 8;
};

/**
 * Recalibration hook. Retrains (or otherwise repairs) the model and
 * returns ok() on success; on success the hook is responsible for
 * installing the new model wherever predictions are served from.
 * `detail` (if non-null) receives a human-readable outcome note.
 * Must be deterministic in `sample` for the stream contracts to
 * hold.
 */
using RecalibrateFn =
    std::function<Status(std::size_t sample, std::string *detail)>;

/** Rolling summary (the JSONL trailer). */
struct SupervisorSummary
{
    std::size_t samples = 0; ///< last observed sample index
    BreakerState state = BreakerState::Closed;
    std::size_t breakerTrips = 0;
    std::size_t recalibrationsAttempted = 0;
    std::size_t recalibrationsSucceeded = 0;
    std::size_t recalibrationsFailed = 0;
    std::size_t deadlineMisses = 0;
    std::size_t eventCounts[numSupervisorEventKinds] = {};

    std::string toJson() const;
};

class Supervisor
{
  public:
    explicit Supervisor(SupervisorOptions opts = {},
                        RecalibrateFn recalibrate = nullptr);

    /**
     * Feed one sample's monitor events through the breaker state
     * machine. May invoke the recalibration hook (synchronously).
     * Returns the supervisor events this sample fired (also retained
     * in events()).
     */
    std::vector<SupervisorEvent>
    observe(std::size_t sample,
            const std::vector<MonitorEvent> &monitorEvents);

    /** Record that the driver persisted checkpoint `generation` at
     *  this sample (call BEFORE serializing the supervisor into the
     *  checkpoint body, so the generation contains its own event and
     *  a resumed stream stays byte-identical). */
    void noteCheckpointWritten(std::size_t sample,
                               std::uint64_t generation);

    BreakerState state() const { return state_; }

    /** Every event fired so far, in sample order. */
    const std::vector<SupervisorEvent> &events() const
    {
        return events_;
    }

    SupervisorSummary summary() const;

    /** All events as JSONL, then one summary trailer line. */
    void exportJsonl(std::ostream &out) const;

    /** Serialize breaker + bookkeeping + retained events (options
     *  and the hook are reconstructed by the caller, like the
     *  monitor's contract). */
    void serialize(std::ostream &out) const;

    /** Restore serialize() output; parses into temporaries and
     *  commits only on success. */
    Status restore(std::istream &in);

    const SupervisorOptions &options() const { return opts_; }

  private:
    void fire(std::vector<SupervisorEvent> &out,
              SupervisorEventKind kind, std::size_t sample,
              double value, std::string detail);
    /** Run the hook; classifies DeadlineExceeded as a miss+failure,
     *  lets SimulatedCrash propagate. */
    Status attemptRecalibration(std::size_t sample,
                                std::vector<SupervisorEvent> &out);
    std::size_t backoffSamples() const;

    SupervisorOptions opts_;
    RecalibrateFn recalibrate_;
    std::vector<SupervisorEvent> events_;

    BreakerState state_ = BreakerState::Closed;
    std::size_t lastSample_ = 0;
    std::size_t consecutiveFailures_ = 0;
    std::size_t breakerTrips_ = 0;
    std::size_t reopenAtSample_ = 0; ///< Open -> HalfOpen at this sample
    std::size_t recalibrationsAttempted_ = 0;
    std::size_t recalibrationsSucceeded_ = 0;
    std::size_t recalibrationsFailed_ = 0;
    std::size_t deadlineMisses_ = 0;
    bool budgetExhaustedNoted_ = false;
};

// ---------------------------------------------------------------
// Autopilot: resumable monitored replay under supervision
// ---------------------------------------------------------------

/** Autopilot tuning on top of the replay/monitor/supervisor knobs. */
struct AutopilotOptions
{
    ReplayOptions replay{};
    /** Write a checkpoint every N samples (0 = never). */
    std::size_t checkpointEverySamples = 0;
    /** Resume from the newest valid generation when one exists. */
    bool resume = false;
    /**
     * Cooperative stop request (e.g. the CLI's SIGTERM/SIGINT flag).
     * Checked once per sample; when it returns true the loop writes
     * a final checkpoint (if a store is attached) and returns with
     * stoppedEarly set — a clean, resumable exit instead of dying
     * mid-generation. Null = never stop early.
     */
    std::function<bool()> stopRequested;
    /**
     * Optional sampling profiler for the replay loop's phases
     * (solve, predict, measure, ingest, supervise, checkpoint).
     * Pure observability: the profiler draws from its own seeded
     * gap stream and never touches a decision path, so attaching
     * one cannot perturb the event stream. Null = no profiling.
     */
    SamplingProfiler *profiler = nullptr;
    /**
     * Chaos hook: invoked serially at the top of every sample (after
     * the cooperative deadline check, before the bias switch and any
     * measurement), with the 0-based sample index about to run. The
     * chaos-campaign runner uses it to apply scheduled fault actions
     * mid-run. The callee must be deterministic given the sample
     * index — it is re-invoked for the same indices on a crash-resume
     * replay — and must consume no inner-testbed randomness of its
     * own (setConfig/setCrashPoint style mutations only). Null = off.
     */
    std::function<void(std::size_t)> beforeSample;
};

/** Autopilot outcome. */
struct AutopilotResult
{
    std::size_t samples = 0;     ///< total samples in the schedule
    std::size_t startSample = 0; ///< samples skipped via resume
    /** A cooperative stop request ended the run before the schedule
     *  did; resume from the final checkpoint to continue. */
    bool stoppedEarly = false;
    std::size_t stoppedAtSample = 0; ///< samples completed at stop
    MonitorSummary monitorSummary;
    SupervisorSummary supervisorSummary;
};

/**
 * Supervised, crash-resumable schedule replay. Per sample: noise-free
 * solo baseline -> predictDetailed -> measured co-run -> monitor
 * ingest -> supervisor observe (which may recalibrate) -> periodic
 * checkpoint. While the breaker is open the model is quarantined via
 * markMemoryDegraded, so predictions flow through the PR 1 fallback
 * chain instead of a known-bad model.
 *
 * The checkpoint captures everything the stream depends on: sample
 * cursor, model (nested v2 format), monitor + supervisor state, and
 * the noise / fault RNG streams — so a run killed at any point and
 * restarted with resume=true produces a monitor+supervisor event
 * stream byte-identical to an uninterrupted run.
 *
 * `store` may be null (no checkpointing). Corrupt checkpoints fall
 * back generation-by-generation inside the store; an empty store
 * with resume=true simply starts fresh.
 */
Result<AutopilotResult>
runAutopilot(ReplayContext &ctx,
             const std::vector<ScheduleStep> &schedule,
             PredictionMonitor &monitor, Supervisor &supervisor,
             CheckpointStore *store, const AutopilotOptions &opts);

} // namespace tomur::core

#endif // TOMUR_TOMUR_SUPERVISOR_HH
