/**
 * @file
 * Text serialization of trained Tomur models. Offline training is
 * the expensive step (testbed co-runs); persisted models let online
 * components (placement, diagnosis) start instantly.
 *
 * Format (version 2): a header line
 *
 *     tomur_model <version> <body-bytes> <fnv1a64-checksum-hex>
 *
 * followed by exactly <body-bytes> bytes of body. The length +
 * checksum let load() reject truncated or bit-flipped files with a
 * descriptive error before parsing anything; inside the body every
 * section is validated against named bounds, and a parse failure
 * names the section so a corrupt model file is diagnosable. Loading
 * never mutates the destination model until the whole file has been
 * validated.
 */

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/logging.hh"
#include "common/serial.hh"
#include "common/strutil.hh"
#include "tomur/predictor.hh"

namespace tomur::core {

namespace {

/** Serialization format version save() writes and load() accepts. */
constexpr int kFormatVersion = 2;

/** Upper bound on seed-averaged ensemble sizes (memory and solo
 *  model sections). Real ensembles hold 3 models (§7.1); anything
 *  beyond this is a corrupt or hostile count. */
constexpr std::size_t kMaxEnsembleModels = 64;

/** Upper bound on an accelerator model's effective queue count; the
 *  calibration clamps estimates to (0, 64) (accel_model.cc). */
constexpr int kMaxAccelQueues = 64;

/** Upper bound on the serialized body size (16 MiB). A trained
 *  model is a few hundred KiB; a larger declared length means a
 *  corrupt header and must not drive an allocation. */
constexpr std::size_t kMaxBodyBytes = 16u << 20;

Status
sectionError(const char *section, const std::string &detail)
{
    return Status::corruptData(strf("%s section: %s", section,
                                    detail.c_str()));
}

} // namespace

std::uint64_t
modelBodyChecksum(std::string_view body)
{
    return fnv1a64(body);
}

Status
MemoryModel::save(std::ostream &out) const
{
    if (!fitted_) {
        return Status::failedPrecondition(
            "MemoryModel::save before fit");
    }
    out << "memory_model " << models_.size() << " "
        << (opts_.trafficAware ? 1 : 0) << "\n";
    for (const auto &m : models_)
        m.save(out);
    return Status::ok();
}

Status
MemoryModel::load(std::istream &in)
{
    if (!expectToken(in, "memory_model")) {
        return sectionError("memory model",
                            "missing 'memory_model' tag");
    }
    std::size_t count = 0;
    int traffic_aware = 0;
    in >> count >> traffic_aware;
    if (!in)
        return sectionError("memory model", "unreadable header");
    if (count == 0 || count > kMaxEnsembleModels) {
        return sectionError(
            "memory model",
            strf("ensemble size %zu outside [1, %zu]", count,
                 kMaxEnsembleModels));
    }
    std::vector<ml::GradientBoostingRegressor> models(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (!models[i].load(in)) {
            return sectionError(
                "memory model",
                strf("sub-model %zu of %zu failed to parse", i + 1,
                     count));
        }
    }
    models_ = std::move(models);
    opts_.seeds = static_cast<int>(count);
    opts_.trafficAware = traffic_aware != 0;
    fitted_ = true;
    return Status::ok();
}

Status
AccelQueueModel::save(std::ostream &out) const
{
    if (!calibrated_) {
        return Status::failedPrecondition(
            "AccelQueueModel::save before calibrate");
    }
    out << "accel_model " << queues_ << " ";
    writeSerialDouble(out, t0_);
    out << " ";
    writeSerialDouble(out, byteSlope_);
    out << " ";
    writeSerialDouble(out, matchSlope_);
    out << "\n";
    return Status::ok();
}

Status
AccelQueueModel::load(std::istream &in)
{
    if (!expectToken(in, "accel_model")) {
        return sectionError("accelerator model",
                            "missing 'accel_model' tag");
    }
    int queues = 0;
    double t0 = 0.0, bs = 0.0, ms = 0.0;
    in >> queues >> t0 >> bs >> ms;
    if (!in)
        return sectionError("accelerator model", "unreadable fields");
    if (queues < 1 || queues > kMaxAccelQueues) {
        return sectionError(
            "accelerator model",
            strf("queue count %d outside [1, %d]", queues,
                 kMaxAccelQueues));
    }
    queues_ = queues;
    t0_ = t0;
    byteSlope_ = bs;
    matchSlope_ = ms;
    calibrated_ = true;
    return Status::ok();
}

Status
TomurModel::save(std::ostream &out) const
{
    // Serialize the body first so the header can carry its length
    // and checksum.
    std::ostringstream body;
    body << "nf " << (nfName_.empty() ? "-" : nfName_) << "\n";
    body << "pattern "
         << (pattern_ == framework::ExecutionPattern::Pipeline
                 ? "pl"
                 : "rtc")
         << "\n";
    body << "health " << (health_.soloDegraded ? 1 : 0) << " "
         << (health_.memoryDegraded ? 1 : 0);
    for (int k = 0; k < hw::numAccelKinds; ++k)
        body << " " << (health_.accelDegraded[k] ? 1 : 0);
    body << "\n";
    if (auto s = memory_.save(body); !s)
        return s.withContext("TomurModel::save");
    body << "solo_models " << soloModels_.size() << "\n";
    for (const auto &m : soloModels_)
        m.save(body);
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        body << "accel " << k << " " << (accel_[k] ? 1 : 0) << "\n";
        if (accel_[k]) {
            if (auto s = accel_[k]->save(body); !s)
                return s.withContext("TomurModel::save");
        }
    }

    std::string bytes = body.str();
    out << "tomur_model " << kFormatVersion << " " << bytes.size()
        << " " << std::hex << modelBodyChecksum(bytes) << std::dec
        << "\n";
    out << bytes;
    if (!out)
        return Status::ioError("TomurModel::save: stream write failed");
    return Status::ok();
}

Status
TomurModel::load(std::istream &in)
{
    // ---- Header: magic, version, body length, checksum ----
    if (!expectToken(in, "tomur_model")) {
        return Status::corruptData(
            "header section: missing 'tomur_model' tag");
    }
    int version = 0;
    in >> version;
    if (!in || version != kFormatVersion) {
        return Status::corruptData(strf(
            "header section: unsupported format version %d "
            "(expected %d)",
            version, kFormatVersion));
    }
    std::size_t body_bytes = 0;
    std::string checksum_hex;
    in >> body_bytes >> checksum_hex;
    if (!in) {
        return Status::corruptData(
            "header section: unreadable length/checksum");
    }
    if (body_bytes == 0 || body_bytes > kMaxBodyBytes) {
        return Status::corruptData(
            strf("header section: body length %zu outside [1, %zu]",
                 body_bytes, kMaxBodyBytes));
    }
    std::uint64_t declared = 0;
    try {
        std::size_t pos = 0;
        declared = std::stoull(checksum_hex, &pos, 16);
        if (pos != checksum_hex.size())
            throw std::invalid_argument(checksum_hex);
    } catch (const std::exception &) {
        return Status::corruptData(
            strf("header section: bad checksum token '%s'",
                 checksum_hex.c_str()));
    }
    in.get(); // the newline ending the header line

    std::string bytes(body_bytes, '\0');
    in.read(bytes.data(), static_cast<std::streamsize>(body_bytes));
    if (in.gcount() != static_cast<std::streamsize>(body_bytes)) {
        return Status::corruptData(
            strf("header section: truncated body (%zd of %zu bytes)",
                 static_cast<std::ptrdiff_t>(in.gcount()),
                 body_bytes));
    }
    std::uint64_t actual = modelBodyChecksum(bytes);
    if (actual != declared) {
        return Status::corruptData(strf(
            "checksum mismatch: body hashes to %llx, header says "
            "%llx (file damaged in transit or storage)",
            static_cast<unsigned long long>(actual),
            static_cast<unsigned long long>(declared)));
    }

    // ---- Body: parse into temporaries, commit only on success ----
    std::istringstream body(bytes);
    if (!expectToken(body, "nf"))
        return Status::corruptData("nf section: missing 'nf' tag");
    std::string name;
    body >> name;
    if (!body)
        return Status::corruptData("nf section: missing NF name");
    if (!expectToken(body, "pattern")) {
        return Status::corruptData(
            "pattern section: missing 'pattern' tag");
    }
    std::string pat;
    body >> pat;
    if (pat != "pl" && pat != "rtc") {
        return Status::corruptData(strf(
            "pattern section: unknown execution pattern '%s'",
            pat.c_str()));
    }

    if (!expectToken(body, "health")) {
        return Status::corruptData(
            "health section: missing 'health' tag");
    }
    ModelHealth health;
    int solo_deg = 0, mem_deg = 0;
    body >> solo_deg >> mem_deg;
    if (!body)
        return Status::corruptData("health section: unreadable flags");
    health.soloDegraded = solo_deg != 0;
    health.memoryDegraded = mem_deg != 0;
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        int deg = 0;
        body >> deg;
        if (!body) {
            return Status::corruptData(
                "health section: unreadable accelerator flags");
        }
        health.accelDegraded[k] = deg != 0;
    }

    MemoryModel memory;
    if (auto s = memory.load(body); !s)
        return s;

    if (!expectToken(body, "solo_models")) {
        return Status::corruptData(
            "solo models section: missing 'solo_models' tag");
    }
    std::size_t n_solo = 0;
    body >> n_solo;
    if (!body) {
        return Status::corruptData(
            "solo models section: unreadable count");
    }
    if (n_solo == 0 || n_solo > kMaxEnsembleModels) {
        return Status::corruptData(
            strf("solo models section: ensemble size %zu outside "
                 "[1, %zu]",
                 n_solo, kMaxEnsembleModels));
    }
    std::vector<ml::GradientBoostingRegressor> solos(n_solo);
    for (std::size_t i = 0; i < n_solo; ++i) {
        if (!solos[i].load(body)) {
            return Status::corruptData(
                strf("solo models section: sub-model %zu of %zu "
                     "failed to parse",
                     i + 1, n_solo));
        }
    }

    std::optional<AccelQueueModel> accel[hw::numAccelKinds];
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        if (!expectToken(body, "accel")) {
            return Status::corruptData(strf(
                "accelerator section %d: missing 'accel' tag", k));
        }
        int idx = -1, present = 0;
        body >> idx >> present;
        if (!body || idx != k) {
            return Status::corruptData(strf(
                "accelerator section %d: bad kind index", k));
        }
        if (present) {
            AccelQueueModel m;
            if (auto s = m.load(body); !s)
                return s.withContext(
                    strf("accelerator section %d", k));
            accel[k] = std::move(m);
        }
    }

    nfName_ = name == "-" ? std::string() : name;
    pattern_ = pat == "pl"
        ? framework::ExecutionPattern::Pipeline
        : framework::ExecutionPattern::RunToCompletion;
    health_ = health;
    memory_ = std::move(memory);
    soloModels_ = std::move(solos);
    for (int k = 0; k < hw::numAccelKinds; ++k)
        accel_[k] = std::move(accel[k]);
    return Status::ok();
}

} // namespace tomur::core
