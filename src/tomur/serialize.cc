/**
 * @file
 * Text serialization of trained Tomur models. Offline training is
 * the expensive step (testbed co-runs); persisted models let online
 * components (placement, diagnosis) start instantly.
 */

#include <iomanip>
#include <istream>
#include <ostream>
#include <string>

#include "common/logging.hh"
#include "tomur/predictor.hh"

namespace tomur::core {

namespace {

void
writeDouble(std::ostream &out, double v)
{
    out << std::setprecision(17) << v;
}

bool
expectToken(std::istream &in, const char *token)
{
    std::string got;
    in >> got;
    return static_cast<bool>(in) && got == token;
}

} // namespace

void
MemoryModel::save(std::ostream &out) const
{
    if (!fitted_)
        panic("MemoryModel::save before fit");
    out << "memory_model " << models_.size() << " "
        << (opts_.trafficAware ? 1 : 0) << "\n";
    for (const auto &m : models_)
        m.save(out);
}

bool
MemoryModel::load(std::istream &in)
{
    if (!expectToken(in, "memory_model"))
        return false;
    std::size_t count = 0;
    int traffic_aware = 0;
    in >> count >> traffic_aware;
    if (!in || count == 0 || count > 64)
        return false;
    std::vector<ml::GradientBoostingRegressor> models(count);
    for (auto &m : models) {
        if (!m.load(in))
            return false;
    }
    models_ = std::move(models);
    opts_.seeds = static_cast<int>(count);
    opts_.trafficAware = traffic_aware != 0;
    fitted_ = true;
    return true;
}

void
AccelQueueModel::save(std::ostream &out) const
{
    if (!calibrated_)
        panic("AccelQueueModel::save before calibrate");
    out << "accel_model " << queues_ << " ";
    writeDouble(out, t0_);
    out << " ";
    writeDouble(out, byteSlope_);
    out << " ";
    writeDouble(out, matchSlope_);
    out << "\n";
}

bool
AccelQueueModel::load(std::istream &in)
{
    if (!expectToken(in, "accel_model"))
        return false;
    int queues = 0;
    double t0 = 0.0, bs = 0.0, ms = 0.0;
    in >> queues >> t0 >> bs >> ms;
    if (!in || queues < 1 || queues > 64)
        return false;
    queues_ = queues;
    t0_ = t0;
    byteSlope_ = bs;
    matchSlope_ = ms;
    calibrated_ = true;
    return true;
}

void
TomurModel::save(std::ostream &out) const
{
    out << "tomur_model 1\n"; // format version
    out << "nf " << (nfName_.empty() ? "-" : nfName_) << "\n";
    out << "pattern "
        << (pattern_ == framework::ExecutionPattern::Pipeline ? "pl"
                                                              : "rtc")
        << "\n";
    memory_.save(out);
    out << "solo_models " << soloModels_.size() << "\n";
    for (const auto &m : soloModels_)
        m.save(out);
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        out << "accel " << k << " " << (accel_[k] ? 1 : 0) << "\n";
        if (accel_[k])
            accel_[k]->save(out);
    }
}

bool
TomurModel::load(std::istream &in)
{
    if (!expectToken(in, "tomur_model"))
        return false;
    int version = 0;
    in >> version;
    if (!in || version != 1)
        return false;
    if (!expectToken(in, "nf"))
        return false;
    std::string name;
    in >> name;
    if (!in)
        return false;
    if (!expectToken(in, "pattern"))
        return false;
    std::string pat;
    in >> pat;
    if (pat != "pl" && pat != "rtc")
        return false;

    MemoryModel memory;
    if (!memory.load(in))
        return false;

    if (!expectToken(in, "solo_models"))
        return false;
    std::size_t n_solo = 0;
    in >> n_solo;
    if (!in || n_solo == 0 || n_solo > 64)
        return false;
    std::vector<ml::GradientBoostingRegressor> solos(n_solo);
    for (auto &m : solos) {
        if (!m.load(in))
            return false;
    }

    std::optional<AccelQueueModel> accel[hw::numAccelKinds];
    for (int k = 0; k < hw::numAccelKinds; ++k) {
        if (!expectToken(in, "accel"))
            return false;
        int idx = -1, present = 0;
        in >> idx >> present;
        if (!in || idx != k)
            return false;
        if (present) {
            AccelQueueModel m;
            if (!m.load(in))
                return false;
            accel[k] = std::move(m);
        }
    }

    nfName_ = name == "-" ? std::string() : name;
    pattern_ = pat == "pl"
        ? framework::ExecutionPattern::Pipeline
        : framework::ExecutionPattern::RunToCompletion;
    memory_ = std::move(memory);
    soloModels_ = std::move(solos);
    for (int k = 0; k < hw::numAccelKinds; ++k)
        accel_[k] = std::move(accel[k]);
    return true;
}

} // namespace tomur::core
