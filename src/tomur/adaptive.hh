/**
 * @file
 * Adaptive profiling (Algorithm 1, §5.2): prune traffic attributes
 * the NF is insensitive to, then recursively bisect each kept
 * attribute's range, spending the sampling quota where solo
 * throughput changes fastest.
 */

#ifndef TOMUR_TOMUR_ADAPTIVE_HH
#define TOMUR_TOMUR_ADAPTIVE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "traffic/profile.hh"

namespace tomur::core {

/** Hyper-parameters of Algorithm 1. */
struct AdaptiveOptions
{
    std::size_t quota = 160;     ///< Q: total profiling budget
    double eps0 = 0.05;          ///< relative change to keep an attr
    double eps1 = 0.03;          ///< relative change to keep splitting
    int samplesPerSplit = 4;     ///< m: contended samples per split
    int maxDepth = 5;            ///< recursion cap per attribute
};

/**
 * Callbacks the algorithm drives. Both count against the quota.
 */
struct AdaptiveCallbacks
{
    /** Solo throughput of the NF at a traffic profile. */
    std::function<double(const traffic::TrafficProfile &)> solo;
    /**
     * Collect one training sample at the given traffic profile with
     * a random contention level.
     */
    std::function<void(const traffic::TrafficProfile &)> collect;
};

/** Outcome summary. */
struct AdaptiveResult
{
    /** Attributes that survived pruning (model dimensions). */
    std::vector<traffic::Attribute> keptAttributes;
    /** Total profiling operations performed (quota consumed). */
    std::size_t samplesUsed = 0;
    /** Traffic profiles where contended samples were collected. */
    std::vector<traffic::TrafficProfile> sampledProfiles;
};

/**
 * Run adaptive profiling around a default traffic profile.
 *
 * @param defaults the default traffic profile (16000, 1500, 600)
 * @param candidate_attrs attributes to consider (defaults to all 3)
 */
AdaptiveResult
adaptiveProfile(const AdaptiveCallbacks &callbacks,
                const traffic::TrafficProfile &defaults,
                const AdaptiveOptions &opts = {},
                std::vector<traffic::Attribute> candidate_attrs = {
                    traffic::Attribute::FlowCount,
                    traffic::Attribute::PacketSize,
                    traffic::Attribute::Mtbr});

} // namespace tomur::core

#endif // TOMUR_TOMUR_ADAPTIVE_HH
