/**
 * @file
 * Black-box memory-subsystem model (§4.1.2, §5.1.2): gradient
 * boosting over the aggregated competitor counters (Table 13) fused
 * with the target's traffic attribute vector. Following §7.1, three
 * models with different seeds are trained and predictions averaged.
 */

#ifndef TOMUR_TOMUR_MEMORY_MODEL_HH
#define TOMUR_TOMUR_MEMORY_MODEL_HH

#include <iosfwd>
#include <vector>

#include "common/status.hh"
#include "ml/gbr.hh"
#include "tomur/contention.hh"

namespace tomur::core {

/** Options for the memory model ensemble. */
struct MemoryModelOptions
{
    int seeds = 3;       ///< models averaged per prediction (§7.1)
    ml::GbrParams gbr{}; ///< base hyper-parameters
    /** Include the traffic attribute vector as extra features
     *  (Tomur: true; SLOMO-style fixed-traffic models: false). */
    bool trafficAware = true;
};

/** Option equality (guards warm-start reuse of a fitted model). */
bool operator==(const MemoryModelOptions &a,
                const MemoryModelOptions &b);

/**
 * Seed-averaged GBR predicting throughput under memory contention.
 */
class MemoryModel
{
  public:
    explicit MemoryModel(MemoryModelOptions opts = {});

    /**
     * Fit from training rows. Each row's features must come from
     * featuresFor() with the same trafficAware setting. Returns an
     * error (and leaves the model unfitted) when the dataset is
     * empty or contains non-finite rows — e.g. after every sample
     * of a profiling run was lost to measurement faults.
     */
    Status fit(const ml::Dataset &data);

    /** Build the feature vector for a competitor set + traffic. */
    std::vector<double>
    featuresFor(const std::vector<ContentionLevel> &competitors,
                const traffic::TrafficProfile &profile) const;

    /** Feature names (for building training datasets). */
    std::vector<std::string> featureNames() const;

    /** Predict throughput (pps) for a competitor set + traffic. */
    double
    predict(const std::vector<ContentionLevel> &competitors,
            const traffic::TrafficProfile &profile) const;

    /** Predict from a raw feature vector. */
    double predictRow(const std::vector<double> &features) const;

    bool fitted() const { return fitted_; }
    bool trafficAware() const { return opts_.trafficAware; }
    const MemoryModelOptions &options() const { return opts_; }

    /** Serialize the fitted ensemble to a text stream. */
    Status save(std::ostream &out) const;

    /** Load from save() output. On error the model is untouched and
     *  the Status names what was malformed. */
    Status load(std::istream &in);

  private:
    MemoryModelOptions opts_;
    std::vector<ml::GradientBoostingRegressor> models_;
    bool fitted_ = false;
};

} // namespace tomur::core

#endif // TOMUR_TOMUR_MEMORY_MODEL_HH
