#include "tomur/adaptive.hh"

#include <cmath>
#include <map>

#include "common/logging.hh"

namespace tomur::core {

namespace {

/** Quota-counting wrapper around the callbacks with memoisation of
 *  solo evaluations (profile_one() in Algorithm 1 only counts new
 *  configurations). */
class Budget
{
  public:
    Budget(const AdaptiveCallbacks &cb, const AdaptiveOptions &opts)
        : cb_(cb), opts_(opts)
    {
    }

    bool exhausted() const { return used_ >= opts_.quota; }
    std::size_t used() const { return used_; }

    double
    solo(const traffic::TrafficProfile &p)
    {
        auto key = p.toVector();
        auto it = soloCache_.find(key);
        if (it != soloCache_.end())
            return it->second;
        ++used_;
        double t = cb_.solo(p);
        if (!std::isfinite(t)) {
            // A faulted measurement that slipped past the profiler's
            // screens must not poison the bisection arithmetic:
            // treat it as "no signal" (the range is simply skipped).
            warnEvent("adaptive", "non-finite-solo-measurement", {});
            t = 0.0;
        }
        soloCache_[key] = t;
        return t;
    }

    void
    collect(const traffic::TrafficProfile &p,
            std::vector<traffic::TrafficProfile> &log)
    {
        ++used_;
        cb_.collect(p);
        log.push_back(p);
    }

  private:
    const AdaptiveCallbacks &cb_;
    const AdaptiveOptions &opts_;
    std::size_t used_ = 0;
    std::map<std::vector<double>, double> soloCache_;
};

void
rangeProfile(Budget &budget, const AdaptiveOptions &opts,
             const traffic::TrafficProfile &base,
             traffic::Attribute attr, double lo0, double hi0,
             AdaptiveResult &result)
{
    // Breadth-first bisection: splitting level by level spreads the
    // quota across the whole range before refining any sub-range (a
    // depth-first order would exhaust the budget inside the first
    // half and leave the rest of the attribute range unsampled).
    struct Range
    {
        double lo, hi;
        int depth;
    };
    std::vector<Range> frontier = {{lo0, hi0, 0}};
    while (!frontier.empty() && !budget.exhausted()) {
        std::vector<Range> next;
        for (const auto &r : frontier) {
            if (budget.exhausted() || r.depth > opts.maxDepth)
                break;
            double t_lo = budget.solo(base.withAttribute(attr, r.lo));
            double t_hi = budget.solo(base.withAttribute(attr, r.hi));
            double ref = std::max(std::fabs(t_lo), std::fabs(t_hi));
            if (ref <= 0.0)
                continue;
            // Only enforce collection where throughput changes
            // drastically (Algorithm 1 line 18).
            if (std::fabs(t_hi - t_lo) / ref < opts.eps1)
                continue;
            double mid = 0.5 * (r.lo + r.hi);
            auto p_mid = base.withAttribute(attr, mid);
            for (int i = 0;
                 i < opts.samplesPerSplit && !budget.exhausted();
                 ++i) {
                budget.collect(p_mid, result.sampledProfiles);
            }
            next.push_back({r.lo, mid, r.depth + 1});
            next.push_back({mid, r.hi, r.depth + 1});
        }
        frontier = std::move(next);
    }
}

} // namespace

AdaptiveResult
adaptiveProfile(const AdaptiveCallbacks &callbacks,
                const traffic::TrafficProfile &defaults,
                const AdaptiveOptions &opts,
                std::vector<traffic::Attribute> candidate_attrs)
{
    if (!callbacks.solo || !callbacks.collect)
        fatal("adaptiveProfile: missing callbacks");
    AdaptiveResult result;
    Budget budget(callbacks, opts);

    // Phase 1: prune attribute dimensions (lines 7-11).
    for (auto attr : candidate_attrs) {
        if (budget.exhausted())
            break;
        auto range = traffic::defaultRange(attr);
        double t_min =
            budget.solo(defaults.withAttribute(attr, range.min));
        double t_max =
            budget.solo(defaults.withAttribute(attr, range.max));
        double ref = std::max(std::fabs(t_min), std::fabs(t_max));
        if (ref > 0.0 &&
            std::fabs(t_max - t_min) / ref >= opts.eps0) {
            result.keptAttributes.push_back(attr);
        }
    }

    // Anchor samples at the default profile so the model covers the
    // operating point even when every attribute is pruned.
    for (int i = 0; i < opts.samplesPerSplit && !budget.exhausted();
         ++i) {
        budget.collect(defaults, result.sampledProfiles);
    }

    // Phase 2: recursive range profiling per kept attribute. The
    // budget is spent round-robin across attributes by depth.
    for (auto attr : result.keptAttributes) {
        auto range = traffic::defaultRange(attr);
        // Sample the extremes as well: boundary behaviour anchors
        // the regressor outside the bisected interior.
        for (double v : {range.min, range.max}) {
            if (!budget.exhausted()) {
                budget.collect(defaults.withAttribute(attr, v),
                               result.sampledProfiles);
            }
        }
        rangeProfile(budget, opts, defaults, attr, range.min,
                     range.max, result);
    }

    result.samplesUsed = budget.used();
    return result;
}

} // namespace tomur::core
