/**
 * @file
 * Contention-level descriptors (Appendix F of the paper).
 *
 * A deployed NF applies contention on each shared resource. For the
 * memory subsystem the level is its Table 13 counter vector; for an
 * accelerator it is the queue count and per-request service time
 * (and the offered request rate, so partially-loaded competitors are
 * not over-counted). These descriptors are what a target NF's models
 * consume about its competitors — never the competitors' internals.
 */

#ifndef TOMUR_TOMUR_CONTENTION_HH
#define TOMUR_TOMUR_CONTENTION_HH

#include <string>
#include <vector>

#include "hw/config.hh"
#include "hw/counters.hh"
#include "traffic/profile.hh"

namespace tomur::core {

/** Contention one workload applies on one accelerator. */
struct AccelContention
{
    bool used = false;
    int queues = 1;
    /** Per-request service time at the workload's traffic (s). */
    double serviceTime = 0.0;
    /**
     * Offered request rate (req/s over all queues). closedLoop set
     * means the submitter saturates its share (max-rate NFs that are
     * accelerator-bound; synthetic benches below saturation are
     * open).
     */
    double offeredRate = 0.0;
    bool closedLoop = false;
};

/** Full contention level of one workload under one traffic profile. */
struct ContentionLevel
{
    std::string name;
    /** Memory-subsystem contention: the Table 13 counters. */
    hw::PerfCounters counters;
    AccelContention accel[hw::numAccelKinds];

    const AccelContention &
    accelContention(hw::AccelKind kind) const
    {
        return accel[static_cast<int>(kind)];
    }
};

/** Aggregate competitor memory contention (SLOMO-style sum). */
hw::PerfCounters
aggregateCounters(const std::vector<ContentionLevel> &competitors);

/**
 * Model input feature vector: aggregated competitor counters plus
 * the target's traffic attribute vector (§5.1.2).
 */
std::vector<double>
memoryFeatures(const std::vector<ContentionLevel> &competitors,
               const traffic::TrafficProfile &profile);

/** Feature names matching memoryFeatures() order. */
std::vector<std::string> memoryFeatureNames();

} // namespace tomur::core

#endif // TOMUR_TOMUR_CONTENTION_HH
