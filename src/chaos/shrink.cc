#include "chaos/shrink.hh"

#include "common/telemetry.hh"

namespace tomur::chaos {

namespace {

Counter &
shrinkIterCounter()
{
    static Counter &c =
        metrics().counter("tomur_chaos_shrink_iterations_total");
    return c;
}

} // namespace

ShrinkResult
shrinkPlan(ChaosWorld &world, const FaultPlan &failing,
           InvariantKind kind, const RunnerOptions &run_opts,
           const ShrinkOptions &shrink_opts)
{
    ShrinkResult result;
    result.plan = failing;
    result.kind = kind;

    // Probe: does this candidate still violate `kind`?
    auto probe = [&](const FaultPlan &candidate,
                     std::string *detail) -> bool {
        ++result.iterations;
        shrinkIterCounter().inc();
        RunOutcome outcome = runPlan(world, candidate, run_opts);
        auto verdicts = checkInvariants(candidate, outcome,
                                        run_opts.invariants);
        for (const auto &v : verdicts) {
            if (v.kind == kind && !v.passed) {
                if (detail)
                    *detail = v.detail;
                return true;
            }
        }
        return false;
    };

    // ddmin over the action list: partition the surviving actions
    // into n chunks and try keeping each complement; a reproducing
    // complement becomes the new baseline at granularity
    // max(n-1, 2), otherwise granularity doubles until it exceeds
    // the list length.
    std::vector<FaultAction> actions = failing.actions;
    std::size_t n = 2;
    while (actions.size() >= 2 && n <= actions.size() &&
           result.iterations < shrink_opts.maxRuns) {
        std::size_t chunk = (actions.size() + n - 1) / n;
        bool reduced = false;
        for (std::size_t i = 0;
             i < n && result.iterations < shrink_opts.maxRuns;
             ++i) {
            std::size_t lo = i * chunk;
            if (lo >= actions.size())
                break;
            std::size_t hi =
                std::min(lo + chunk, actions.size());
            std::vector<FaultAction> complement;
            complement.reserve(actions.size() - (hi - lo));
            complement.insert(complement.end(), actions.begin(),
                              actions.begin() +
                                  static_cast<std::ptrdiff_t>(lo));
            complement.insert(complement.end(),
                              actions.begin() +
                                  static_cast<std::ptrdiff_t>(hi),
                              actions.end());
            FaultPlan candidate = failing;
            candidate.actions = complement;
            std::string detail;
            if (probe(candidate, &detail)) {
                actions = std::move(complement);
                result.plan = candidate;
                result.detail = detail;
                n = std::max<std::size_t>(n - 1, 2);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= actions.size())
                break;
            n = std::min(n * 2, actions.size());
        }
    }

    // Final 1-minimality pass: drop single actions while any drop
    // still reproduces (ddmin at n == len covers this, but the
    // budget may have cut it short — this pass is cheap insurance
    // for the small lists we end with).
    bool improved = true;
    while (improved && result.plan.actions.size() > 1 &&
           result.iterations < shrink_opts.maxRuns) {
        improved = false;
        for (std::size_t i = 0;
             i < result.plan.actions.size() &&
             result.iterations < shrink_opts.maxRuns;
             ++i) {
            FaultPlan candidate = result.plan;
            candidate.actions.erase(
                candidate.actions.begin() +
                static_cast<std::ptrdiff_t>(i));
            std::string detail;
            if (probe(candidate, &detail)) {
                result.plan = candidate;
                result.detail = detail;
                improved = true;
                break;
            }
        }
    }

    return result;
}

} // namespace tomur::chaos
