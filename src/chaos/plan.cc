#include "chaos/plan.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/rng.hh"
#include "common/strutil.hh"
#include "common/threadpool.hh"

namespace tomur::chaos {

namespace {

const char *const kActionNames[numActionKinds] = {
    "fault_burst",     "bias",          "degraded_accel",
    "crash",           "ckpt_crash",    "recal_pressure",
    "transport_fault", "corrupt_reload", "queue_storm",
    "drain_drill",
};

/** Base traffic profile every generated scenario starts from. */
traffic::TrafficProfile
basePlanProfile()
{
    return traffic::TrafficProfile::defaults();
}

/** key=value parsing shared by the plan/action lines. */
struct KvLine
{
    std::string directive;
    std::vector<std::pair<std::string, std::string>> kv;
};

Result<KvLine>
splitKvLine(const std::string &line)
{
    KvLine out;
    std::istringstream in(line);
    in >> out.directive;
    std::string tok;
    while (in >> tok) {
        auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 >= tok.size()) {
            return Status::invalidArgument(
                "malformed key=value token '" + tok + "'");
        }
        out.kv.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
    }
    return out;
}

Result<double>
parseNum(const std::string &key, const std::string &value)
{
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(value, &pos);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (pos != value.size() || !std::isfinite(v)) {
        return Status::invalidArgument("bad numeric value for '" +
                                       key + "': '" + value + "'");
    }
    return v;
}

/** Exact u64 parse (seeds do not survive a double round trip). */
Result<std::uint64_t>
parseU64(const std::string &key, const std::string &value)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
        return Status::invalidArgument(
            "bad unsigned value for '" + key + "': '" + value + "'");
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (errno == ERANGE || end != value.c_str() + value.size()) {
        return Status::invalidArgument(
            "bad unsigned value for '" + key + "': '" + value + "'");
    }
    return static_cast<std::uint64_t>(v);
}

} // namespace

const char *
actionKindName(ActionKind kind)
{
    return kActionNames[static_cast<int>(kind)];
}

Result<ActionKind>
actionKindByName(const std::string &name)
{
    for (int i = 0; i < numActionKinds; ++i) {
        if (name == kActionNames[i])
            return static_cast<ActionKind>(i);
    }
    return Status::invalidArgument("unknown action kind '" + name +
                                   "'");
}

const char *
planTargetName(PlanTarget target)
{
    return target == PlanTarget::Autopilot ? "autopilot" : "serve";
}

Result<PlanTarget>
planTargetByName(const std::string &name)
{
    if (name == "autopilot")
        return PlanTarget::Autopilot;
    if (name == "serve")
        return PlanTarget::Serve;
    return Status::invalidArgument("unknown plan target '" + name +
                                   "'");
}

std::size_t
planSamples(const FaultPlan &plan)
{
    if (plan.target == PlanTarget::Serve)
        return kServePlanSteps;
    return traffic::scenarioSamples(plan.scenario);
}

std::string
emitPlan(const FaultPlan &plan)
{
    std::string out =
        strf("plan seed=%llu target=%s\n",
             static_cast<unsigned long long>(plan.seed),
             planTargetName(plan.target));
    if (!plan.scenario.empty())
        out += traffic::emitScenario(plan.scenario);
    for (const auto &a : plan.actions) {
        out += strf("action kind=%s at=%zu magnitude=%.17g "
                    "span=%zu variant=%d\n",
                    actionKindName(a.kind), a.at, a.magnitude,
                    a.span, a.variant);
    }
    return out;
}

Result<FaultPlan>
parsePlan(std::istream &in)
{
    FaultPlan plan;
    bool sawHeader = false;
    std::string scenarioText;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::string trimmed = line;
        auto hash = trimmed.find('#');
        if (hash != std::string::npos)
            trimmed.erase(hash);
        if (trimmed.find_first_not_of(" \t\r") == std::string::npos)
            continue;

        auto kvline = splitKvLine(trimmed);
        if (!kvline) {
            return kvline.status().withContext(
                strf("plan line %d", lineno));
        }
        const auto &d = kvline.value().directive;
        if (d == "plan") {
            if (sawHeader) {
                return Status::invalidArgument(
                    strf("line %d: duplicate plan header", lineno));
            }
            sawHeader = true;
            for (const auto &[k, v] : kvline.value().kv) {
                if (k == "seed") {
                    auto n = parseU64(k, v);
                    if (!n)
                        return n.status();
                    plan.seed = n.value();
                } else if (k == "target") {
                    auto t = planTargetByName(v);
                    if (!t)
                        return t.status();
                    plan.target = t.value();
                } else {
                    return Status::invalidArgument(
                        strf("line %d: unknown plan key '%s'",
                             lineno, k.c_str()));
                }
            }
        } else if (d == "action") {
            if (!sawHeader) {
                return Status::invalidArgument(
                    strf("line %d: action before plan header",
                         lineno));
            }
            FaultAction a;
            bool sawKind = false;
            for (const auto &[k, v] : kvline.value().kv) {
                if (k == "kind") {
                    auto kind = actionKindByName(v);
                    if (!kind)
                        return kind.status();
                    a.kind = kind.value();
                    sawKind = true;
                    continue;
                }
                auto n = parseNum(k, v);
                if (!n)
                    return n.status().withContext(
                        strf("plan line %d", lineno));
                if (k == "at") {
                    if (n.value() < 0)
                        return Status::invalidArgument(
                            "action at must be >= 0");
                    a.at = static_cast<std::size_t>(n.value());
                } else if (k == "magnitude") {
                    a.magnitude = n.value();
                } else if (k == "span") {
                    if (n.value() < 1)
                        return Status::invalidArgument(
                            "action span must be >= 1");
                    a.span = static_cast<std::size_t>(n.value());
                } else if (k == "variant") {
                    a.variant = static_cast<int>(n.value());
                } else {
                    return Status::invalidArgument(
                        strf("line %d: unknown action key '%s'",
                             lineno, k.c_str()));
                }
            }
            if (!sawKind) {
                return Status::invalidArgument(
                    strf("line %d: action without kind", lineno));
            }
            plan.actions.push_back(a);
        } else {
            // Anything else is a traffic scenario directive; defer
            // to the DSL parser so repro files can embed any shape
            // the scenario language can express.
            scenarioText += trimmed;
            scenarioText += '\n';
        }
    }
    if (!sawHeader)
        return Status::invalidArgument("missing plan header line");
    if (!scenarioText.empty()) {
        std::istringstream sin(scenarioText);
        auto steps = traffic::parseScenario(sin);
        if (!steps)
            return steps.status().withContext("plan scenario");
        plan.scenario = std::move(steps.value());
    }
    if (plan.target == PlanTarget::Autopilot &&
        plan.scenario.empty()) {
        return Status::invalidArgument(
            "autopilot plan has no traffic scenario");
    }
    if (!std::is_sorted(plan.actions.begin(), plan.actions.end(),
                        [](const FaultAction &x,
                           const FaultAction &y) {
                            return x.at < y.at;
                        })) {
        return Status::invalidArgument(
            "action list is not sorted by at=");
    }
    return plan;
}

// ---------------------------------------------------------------
// Generators
// ---------------------------------------------------------------

namespace {

/** A quantized scenario family; tail is always steady so recovery
 *  has room to be observed. */
std::vector<traffic::SynthStep>
scenarioFamily(Rng &rng)
{
    auto base = basePlanProfile();
    switch (rng.uniformInt(std::uint64_t{4})) {
    case 0:
    default:
        return traffic::steadySteps(base, 36);
    case 1: {
        traffic::FlashCrowdOptions f;
        f.base = base;
        f.peak = rng.chance(0.5) ? 3.0 : 5.0;
        f.ramp = 2;
        f.hold = 4;
        f.decay = 2;
        auto steps = traffic::steadySteps(base, 10);
        auto flash = traffic::flashCrowdSteps(f);
        steps.insert(steps.end(), flash.begin(), flash.end());
        auto tail = traffic::steadySteps(base, 16);
        steps.insert(steps.end(), tail.begin(), tail.end());
        return steps;
    }
    case 2: {
        traffic::FlowChurnOptions c;
        c.base = base;
        c.fromFlows = 16000.0;
        c.toFlows = 64000.0;
        c.steps = 6;
        auto steps = traffic::steadySteps(base, 8);
        auto churn = traffic::flowChurnSteps(c);
        steps.insert(steps.end(), churn.begin(), churn.end());
        auto tail = traffic::steadySteps(base, 16);
        steps.insert(steps.end(), tail.begin(), tail.end());
        return steps;
    }
    case 3: {
        traffic::MtbrSpikeOptions m;
        m.base = base;
        m.mtbr = rng.chance(0.5) ? 900.0 : 1100.0;
        m.ramp = 2;
        m.hold = 4;
        auto steps = traffic::steadySteps(base, 8);
        auto spike = traffic::mtbrSpikeSteps(m);
        steps.insert(steps.end(), spike.begin(), spike.end());
        auto tail = traffic::steadySteps(base, 16);
        steps.insert(steps.end(), tail.begin(), tail.end());
        return steps;
    }
    }
}

FaultAction
randomAutopilotAction(Rng &rng, std::size_t samples)
{
    // Leave a clean tail for the bounded-recovery invariant.
    const std::size_t lastStart = samples > 18 ? samples - 18 : 1;
    FaultAction a;
    a.at = rng.uniformInt(std::uint64_t{lastStart});
    switch (rng.uniformInt(std::uint64_t{6})) {
    case 0:
    default:
        a.kind = ActionKind::FaultBurst;
        a.magnitude = 0.2 + 0.3 * static_cast<double>(
                                rng.uniformInt(std::uint64_t{3}));
        a.span = 3 + rng.uniformInt(std::uint64_t{5});
        a.variant = static_cast<int>(
                        rng.uniformInt(std::uint64_t{8})) -
                    1; // -1 = uniform, 0..6 = one mode
        if (a.variant > 6)
            a.variant = -1;
        break;
    case 1:
        a.kind = ActionKind::Bias;
        a.magnitude = rng.chance(0.5) ? 0.5 : 0.7;
        a.span = 4 + rng.uniformInt(std::uint64_t{5});
        break;
    case 2:
        a.kind = ActionKind::DegradedAccel;
        a.magnitude = 0.5;
        a.span = 4 + rng.uniformInt(std::uint64_t{5});
        break;
    case 3:
        a.kind = ActionKind::Crash;
        a.magnitude = 0.0;
        a.span = 1;
        break;
    case 4:
        a.kind = ActionKind::CheckpointCrash;
        a.span = 1;
        a.variant = 1 + static_cast<int>(
                            rng.uniformInt(std::uint64_t{4}));
        break;
    case 5:
        a.kind = ActionKind::RecalPressure;
        a.span = 4 + rng.uniformInt(std::uint64_t{5});
        break;
    }
    return a;
}

FaultAction
randomServeAction(Rng &rng)
{
    const std::size_t lastStart = kServePlanSteps - 20;
    FaultAction a;
    a.at = 1 + rng.uniformInt(std::uint64_t{lastStart});
    switch (rng.uniformInt(std::uint64_t{4})) {
    case 0:
    default:
        a.kind = ActionKind::TransportFault;
        a.magnitude = rng.chance(0.5) ? 0.1 : 0.3;
        a.span = 4 + rng.uniformInt(std::uint64_t{8});
        a.variant =
            static_cast<int>(rng.uniformInt(std::uint64_t{4}));
        break;
    case 1:
        a.kind = ActionKind::CorruptReload;
        a.span = 1;
        a.variant =
            static_cast<int>(rng.uniformInt(std::uint64_t{3}));
        break;
    case 2:
        a.kind = ActionKind::QueueStorm;
        a.magnitude = rng.chance(0.5) ? 6.0 : 10.0;
        a.span = 2 + rng.uniformInt(std::uint64_t{3});
        break;
    case 3:
        a.kind = ActionKind::DrainDrill;
        a.at = kServePlanSteps - 10; // always near the end
        a.span = 1;
        break;
    }
    return a;
}

} // namespace

FaultPlan
randomPlan(std::uint64_t campaign_seed, std::size_t index,
           PlanTarget target)
{
    Rng rng(deriveSeed(campaign_seed, 0x9e3779b9u + index));
    FaultPlan plan;
    plan.seed = deriveSeed(campaign_seed, index);
    plan.target = target;
    std::size_t n = 1 + rng.uniformInt(std::uint64_t{3});
    if (target == PlanTarget::Autopilot) {
        plan.scenario = scenarioFamily(rng);
        std::size_t samples = traffic::scenarioSamples(plan.scenario);
        for (std::size_t i = 0; i < n; ++i)
            plan.actions.push_back(
                randomAutopilotAction(rng, samples));
    } else {
        bool sawDrain = false;
        for (std::size_t i = 0; i < n; ++i) {
            auto a = randomServeAction(rng);
            if (a.kind == ActionKind::DrainDrill) {
                if (sawDrain)
                    continue; // one drain per plan is plenty
                sawDrain = true;
            }
            plan.actions.push_back(a);
        }
    }
    std::stable_sort(plan.actions.begin(), plan.actions.end(),
                     [](const FaultAction &x, const FaultAction &y) {
                         return x.at < y.at;
                     });
    return plan;
}

std::vector<FaultPlan>
modePairPlans(std::uint64_t campaign_seed)
{
    std::vector<FaultPlan> plans;
    auto base = basePlanProfile();
    for (int i = 0; i < 7; ++i) {
        for (int j = i + 1; j < 7; ++j) {
            FaultPlan p;
            p.seed = deriveSeed(campaign_seed,
                                0x70000000u +
                                    static_cast<std::uint64_t>(
                                        i * 7 + j));
            p.target = PlanTarget::Autopilot;
            p.scenario = traffic::steadySteps(base, 36);
            FaultAction a;
            a.kind = ActionKind::FaultBurst;
            a.at = 4;
            a.magnitude = 0.5;
            a.span = 8;
            a.variant = i;
            FaultAction b = a;
            b.at = 8; // overlaps a: the pair composes, not chains
            b.variant = j;
            p.actions = {a, b};
            plans.push_back(std::move(p));
        }
    }
    return plans;
}

} // namespace tomur::chaos
