/**
 * @file
 * Plan execution: drive one FaultPlan through the real stack and
 * fill a RunOutcome for the invariant checkers.
 *
 * Autopilot plans run the full supervised replay (runAutopilot):
 * the plan's actions are applied mid-run through the autopilot's
 * beforeSample hook as a pure function of the sample index, so a
 * crash-resume replays the identical fault schedule. Crashes
 * (SimulatedCrash from the fault testbed or the checkpoint store)
 * are caught here and the run resumed from its surviving
 * checkpoint, exactly as an operator restart would.
 *
 * Serve plans run the deterministic single-threaded server core
 * over memory transports with a scripted client population.
 *
 * The ChaosWorld (testbed + trained model) is built once and shared
 * across every plan of a campaign: per-plan state (noise and fault
 * RNG streams, model copy, monitor, supervisor) is reset from the
 * plan seed, and the solve cache is observationally invisible, so
 * sharing changes nothing about any plan's outcome — only the
 * campaign's wall-clock.
 */

#ifndef TOMUR_CHAOS_RUNNER_HH
#define TOMUR_CHAOS_RUNNER_HH

#include <memory>
#include <string>
#include <vector>

#include "chaos/invariants.hh"
#include "chaos/plan.hh"
#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "sim/faults.hh"
#include "tomur/supervisor.hh"

namespace tomur::chaos {

/** The shared heavy fixture: testbeds, bench library, trainer, and
 *  one pristine trained model. Building it trains once; every plan
 *  run borrows it and restores seeded per-plan state. */
struct ChaosWorld
{
    explicit ChaosWorld(const std::string &nf_name = "FlowStats");

    regex::RuleSet rules;
    framework::DeviceSet dev;
    sim::Testbed bed;
    sim::FaultInjectingTestbed faulty;
    std::unique_ptr<core::BenchLibrary> lib;
    std::unique_ptr<core::TomurTrainer> trainer;
    std::unique_ptr<framework::NetworkFunction> nf;
    core::TomurModel pristine;
    std::string pristineBytes; ///< save() body of the pristine model
    std::vector<core::ContentionLevel> levels;
    std::vector<framework::WorkloadProfile> competitors;
    std::string nfName;
};

/** Planted regressions the self-test (and CI smoke) arm to prove
 *  the campaign catches real failures. Empty = none. */
constexpr const char *kPlantRegistryNoCommit = "registry-no-commit";
constexpr const char *kPlantStickyBias = "sticky-bias";

/** Runner tuning. */
struct RunnerOptions
{
    /** Scratch directory (checkpoint store + model corpus files);
     *  runPlan manages its own subdirectories. Required. */
    std::string workDir;
    std::size_t checkpointEverySamples = 6;
    /** Crash-resume attempts before the run is declared failed. */
    std::size_t maxResumes = 8;
    /** Cooperative granule budget per plan; 0 = auto-scaled from
     *  the plan length. A trip is a no_hang violation. */
    std::uint64_t planDeadlineGranules = 0;
    /** Planted regression ("" = none). */
    std::string plant;
    InvariantOptions invariants;
};

/** Execute one plan. Never throws for in-plan faults (crashes,
 *  deadline trips, corrupt state all land in the outcome). */
RunOutcome runPlan(ChaosWorld &world, const FaultPlan &plan,
                   const RunnerOptions &opts);

} // namespace tomur::chaos

#endif // TOMUR_CHAOS_RUNNER_HH
