/**
 * @file
 * Fault plans: the unit of work a chaos campaign sweeps.
 *
 * A FaultPlan composes injections across every fault knob the stack
 * exposes — sim::FaultConfig corruption modes and deterministic
 * bias, crash-after-batches kills, CheckpointCrashPoint protocol
 * crashes, recalibration deadline pressure, serve transport faults,
 * queue storms, corrupt-model hot reloads, drain drills — into one
 * seeded, replayable schedule over a synthesized traffic scenario.
 *
 * Plans are data, not code: they serialize to a line-oriented repro
 * format (emitPlan/parsePlan round-trip to the identical plan, the
 * same contract the traffic scenario DSL pins), so a failing plan
 * found by a campaign can be shrunk, written to a file, attached to
 * a bug report, and replayed with `tomur chaos --replay`.
 *
 * Everything here is deterministic: plan generation is a pure
 * function of (campaign seed, plan index), and no wall clock or
 * unseeded RNG is consulted anywhere.
 */

#ifndef TOMUR_CHAOS_PLAN_HH
#define TOMUR_CHAOS_PLAN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hh"
#include "traffic/synth.hh"

namespace tomur::chaos {

/** What one scheduled fault action does. */
enum class ActionKind
{
    /** Random measurement corruption at rate `magnitude` over
     *  [at, at+span) samples. variant -1: uniform across all random
     *  modes; 0..6: a single sim::FaultMode by index. */
    FaultBurst,
    /** Deterministic throughput bias: measurements scaled by
     *  `magnitude` over [at, at+span) (simulated model drift). */
    Bias,
    /** Degraded accelerator: throughput of accel-using workloads
     *  scaled by `magnitude` over [at, at+span). */
    DegradedAccel,
    /** SimulatedCrash in sample `at`'s measurement batch (fires
     *  once; the run resumes from its last checkpoint). */
    Crash,
    /** Checkpoint-protocol crash: arms CheckpointCrashPoint
     *  `variant` (1..4) at sample `at`; fires at the next
     *  checkpoint write, once. */
    CheckpointCrash,
    /** Recalibration deadline pressure over [at, at+span): every
     *  recalibration attempt runs under a 1-granule budget and
     *  deterministically misses its deadline. */
    RecalPressure,
    /** Serve: connections opened during [at, at+span) steps pass
     *  through a FaultInjectingTransport. variant 0 short reads,
     *  1 short writes, 2 EAGAIN storms, 3 disconnects; magnitude is
     *  the fault rate. */
    TransportFault,
    /** Serve: POST /reload pointing at a corrupt model file at step
     *  `at`. variant 0 truncated, 1 bit-flipped, 2 empty. */
    CorruptReload,
    /** Serve: `magnitude` extra pipelined requests per step over
     *  [at, at+span) (drives queue-full shedding). */
    QueueStorm,
    /** Serve: beginDrain() at step `at`; the run then verifies the
     *  drain converges and late arrivals get closed refusals. */
    DrainDrill,
};

constexpr int numActionKinds = 10;

/** Wire name ("fault_burst", ...). */
const char *actionKindName(ActionKind kind);

/** Inverse of actionKindName. */
Result<ActionKind> actionKindByName(const std::string &name);

/** One scheduled fault action. `at` is a 0-based autopilot sample
 *  index (autopilot plans) or driver step index (serve plans). */
struct FaultAction
{
    ActionKind kind = ActionKind::FaultBurst;
    std::size_t at = 0;
    double magnitude = 0.0;
    std::size_t span = 1;
    int variant = 0;

    bool operator==(const FaultAction &o) const = default;
};

/** Which layer the plan drives. */
enum class PlanTarget
{
    Autopilot, ///< runAutopilot over a synthesized traffic scenario
    Serve,     ///< in-process server core over memory transports
};

const char *planTargetName(PlanTarget target);
Result<PlanTarget> planTargetByName(const std::string &name);

/** One composed fault plan. */
struct FaultPlan
{
    std::uint64_t seed = 0; ///< per-plan noise/fault-stream seed
    PlanTarget target = PlanTarget::Autopilot;
    /** Traffic scenario an autopilot plan replays (serve plans
     *  ignore it; their length is fixed by the driver). */
    std::vector<traffic::SynthStep> scenario;
    /** Actions, sorted by `at` (parse enforces, generators emit
     *  sorted). */
    std::vector<FaultAction> actions;

    bool operator==(const FaultPlan &o) const = default;
};

/**
 * Serialize a plan to the repro format: a `plan` header line, the
 * scenario in the traffic DSL's canonical lowered form, then one
 * `action` line per action:
 *
 *   plan seed=7 target=autopilot
 *   step flows=16000 size=512 mtbr=600 repeats=12
 *   action kind=fault_burst at=4 magnitude=0.5 span=6 variant=-1
 *
 * parsePlan(emitPlan(p)) == p (the round-trip identity the repro
 * workflow depends on).
 */
std::string emitPlan(const FaultPlan &plan);

/** Parse emitPlan() output (or a hand-written repro file).
 *  All-or-nothing: any unknown key, bad number, out-of-range field,
 *  or unsorted action list rejects the whole input. */
Result<FaultPlan> parsePlan(std::istream &in);

/** Total autopilot samples of the plan's scenario. */
std::size_t planSamples(const FaultPlan &plan);

/** Driver steps a serve-target plan runs for. */
constexpr std::size_t kServePlanSteps = 60;

/**
 * The random tier: a seeded plan drawn from quantized parameter
 * grids (quantization keeps the solve-cache hit rate high across a
 * campaign). Pure function of (campaignSeed, index, target); every
 * generated plan leaves a clean steady tail so the bounded-recovery
 * invariant has room to observe convergence.
 */
FaultPlan randomPlan(std::uint64_t campaign_seed, std::size_t index,
                     PlanTarget target);

/** The combinatorial tier: one plan per unordered pair of the 7
 *  sim::FaultModes (21 plans), each composing two single-mode
 *  bursts over a steady scenario. */
std::vector<FaultPlan> modePairPlans(std::uint64_t campaign_seed);

} // namespace tomur::chaos

#endif // TOMUR_CHAOS_PLAN_HH
