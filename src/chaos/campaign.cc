#include "chaos/campaign.hh"

#include <sstream>

#include "common/strutil.hh"
#include "common/telemetry.hh"

namespace tomur::chaos {

namespace {

Counter &
violationCounter()
{
    static Counter &c =
        metrics().counter("tomur_chaos_violations_total");
    return c;
}

void
emitPlanLine(std::ostream &out, const PlanReport &r)
{
    out << "{\"chaos_plan\":" << r.index
        << ",\"seed\":" << r.plan.seed << ",\"target\":\""
        << planTargetName(r.plan.target)
        << "\",\"actions\":" << r.plan.actions.size()
        << ",\"samples\":" << r.outcome.samples
        << ",\"crashes\":" << r.outcome.crashes
        << ",\"resumes\":" << r.outcome.resumes
        << ",\"faults\":" << r.outcome.faultsInjected
        << ",\"stream\":\""
        << strf("%016llx", static_cast<unsigned long long>(
                               r.outcome.streamHash))
        << "\",\"verdicts\":{";
    for (std::size_t i = 0; i < r.verdicts.size(); ++i) {
        const auto &v = r.verdicts[i];
        if (i)
            out << ',';
        out << '"' << invariantName(v.kind) << "\":\""
            << (v.passed ? "pass" : "FAIL") << '"';
    }
    out << "},\"violations\":" << r.violations << "}\n";
}

} // namespace

CampaignResult
runCampaign(ChaosWorld &world, const CampaignOptions &opts)
{
    CampaignResult result;

    std::vector<FaultPlan> plans;
    if (opts.combinatorial) {
        for (auto &p : modePairPlans(opts.seed))
            plans.push_back(std::move(p));
    }
    for (std::size_t i = 0; i < opts.runs; ++i) {
        PlanTarget target =
            opts.serveEveryN > 0 && (i + 1) % opts.serveEveryN == 0
                ? PlanTarget::Serve
                : PlanTarget::Autopilot;
        plans.push_back(randomPlan(opts.seed, i, target));
    }

    std::ostringstream jsonl;
    for (std::size_t idx = 0; idx < plans.size(); ++idx) {
        PlanReport report;
        report.index = idx;
        report.plan = plans[idx];
        report.outcome =
            runPlan(world, report.plan, opts.runner);
        report.verdicts =
            checkInvariants(report.plan, report.outcome,
                            opts.runner.invariants);

        // Determinism sampling: re-run and compare fingerprints.
        InvariantVerdict det;
        det.kind = InvariantKind::Determinism;
        det.passed = true;
        if (opts.determinismEveryN > 0 &&
            (idx + 1) % opts.determinismEveryN == 0) {
            ++result.determinismReruns;
            RunOutcome again =
                runPlan(world, report.plan, opts.runner);
            if (again.streamHash != report.outcome.streamHash) {
                det.passed = false;
                det.detail = strf(
                    "stream fingerprint diverged on re-run: "
                    "%016llx vs %016llx",
                    static_cast<unsigned long long>(
                        report.outcome.streamHash),
                    static_cast<unsigned long long>(
                        again.streamHash));
            }
        }
        report.verdicts.push_back(det);

        for (const auto &v : report.verdicts) {
            if (!v.passed) {
                ++report.violations;
                ++result.invariantFailures[static_cast<int>(
                    v.kind)];
            }
        }
        result.violations += report.violations;
        if (report.violations > 0) {
            ++result.violatingPlans;
            violationCounter().inc(
                static_cast<double>(report.violations));
        }
        result.crashes += report.outcome.crashes;
        result.resumes += report.outcome.resumes;
        result.faultsInjected += report.outcome.faultsInjected;

        // First violation: minimize and keep the repro.
        if (report.violations > 0 && !result.haveRepro) {
            result.haveRepro = true;
            result.firstViolationIndex = idx;
            for (const auto &v : report.verdicts) {
                if (!v.passed) {
                    result.firstViolationKind = v.kind;
                    result.firstViolationDetail = v.detail;
                    break;
                }
            }
            if (opts.shrink &&
                result.firstViolationKind !=
                    InvariantKind::Determinism) {
                ShrinkResult shrunk = shrinkPlan(
                    world, report.plan,
                    result.firstViolationKind, opts.runner,
                    opts.shrinkOpts);
                result.shrunkPlan = shrunk.plan;
                result.shrinkIterations += shrunk.iterations;
                if (!shrunk.detail.empty())
                    result.firstViolationDetail = shrunk.detail;
            } else {
                result.shrunkPlan = report.plan;
            }
            result.reproText = emitPlan(result.shrunkPlan);
        }

        emitPlanLine(jsonl, report);
        result.reports.push_back(std::move(report));
    }
    result.plans = plans.size();

    jsonl << "{\"chaos_summary\":{\"plans\":" << result.plans
          << ",\"violations\":" << result.violations
          << ",\"violating_plans\":" << result.violatingPlans
          << ",\"crashes\":" << result.crashes
          << ",\"resumes\":" << result.resumes
          << ",\"faults_injected\":" << result.faultsInjected
          << ",\"determinism_reruns\":" << result.determinismReruns
          << ",\"shrink_iterations\":" << result.shrinkIterations
          << ",\"failures\":{";
    for (int i = 0; i < numInvariants; ++i) {
        if (i)
            jsonl << ',';
        jsonl << '"'
              << invariantName(static_cast<InvariantKind>(i))
              << "\":" << result.invariantFailures[i];
    }
    jsonl << "}}}\n";
    result.jsonl = jsonl.str();
    return result;
}

} // namespace tomur::chaos
