#include "chaos/runner.hh"

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/checkpoint.hh"
#include "common/deadline.hh"
#include "common/serial.hh"
#include "common/strutil.hh"
#include "common/telemetry.hh"
#include "common/threadpool.hh"
#include "serve/registry.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "serve/transport.hh"
#include "tomur/profiler.hh"

namespace tomur::chaos {

namespace fs = std::filesystem;
namespace fw = framework;

// ---------------------------------------------------------------
// ChaosWorld
// ---------------------------------------------------------------

ChaosWorld::ChaosWorld(const std::string &nf_name)
    : rules(regex::defaultRuleSet()), bed(hw::blueField2()),
      faulty(bed, {}), nfName(nf_name)
{
    dev.regex = std::make_shared<fw::RegexDevice>(rules);
    dev.compression = std::make_shared<fw::CompressionDevice>();
    dev.crypto = std::make_shared<fw::CryptoDevice>();
    lib = std::make_unique<core::BenchLibrary>(faulty, dev, rules);
    trainer = std::make_unique<core::TomurTrainer>(*lib);
    nf = nfs::makeByName(nfName, dev);

    core::TrainOptions topts;
    topts.adaptive.quota = 40;
    pristine = trainer->train(*nf, traffic::TrafficProfile::defaults(),
                              topts);
    {
        std::ostringstream body;
        Status saved = pristine.save(body);
        if (saved.isOk())
            pristineBytes = body.str();
    }

    // Reference contention: the heaviest large-WSS memory bench,
    // the same choice the supervisor tests use.
    const core::BenchLibrary::MemBenchEntry *mem =
        &lib->memBenches().front();
    for (const auto &e : lib->memBenches()) {
        if (e.config.wssBytes >= 12.0 * 1024 * 1024 &&
            e.level.counters.cacheAccessRate() >
                mem->level.counters.cacheAccessRate()) {
            mem = &e;
        }
    }
    levels = {mem->level};
    competitors = {mem->workload};
}

// ---------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------

namespace {

Counter &
plansCounter()
{
    static Counter &c = metrics().counter("tomur_chaos_plans_total");
    return c;
}

Counter &
crashCounter()
{
    static Counter &c =
        metrics().counter("tomur_chaos_crashes_total");
    return c;
}

Counter &
resumeCounter()
{
    static Counter &c =
        metrics().counter("tomur_chaos_resumes_total");
    return c;
}

std::string
freshSubdir(const std::string &work_dir, const char *name)
{
    fs::path dir = fs::path(work_dir) / name;
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    return dir.string();
}

/** The effective continuous fault state at one sample — a pure
 *  function of (plan, sample), so crash-resume replays it exactly. */
struct EffectiveFaults
{
    double burstProb = 0.0;
    int burstMode = -1; ///< -1 uniform, 0..6 one FaultMode
    double bias = 1.0;
    double accelFactor = 0.0; ///< 0 = accel not degraded
    bool pressure = false;

    bool operator==(const EffectiveFaults &o) const = default;
};

EffectiveFaults
effectiveAt(const FaultPlan &plan, std::size_t sample, bool sticky_bias)
{
    EffectiveFaults e;
    for (const auto &a : plan.actions) {
        bool active =
            sample >= a.at && sample < a.at + a.span;
        switch (a.kind) {
        case ActionKind::FaultBurst:
            if (active && a.magnitude >= e.burstProb) {
                e.burstProb = a.magnitude;
                e.burstMode = a.variant;
            }
            break;
        case ActionKind::Bias:
            if (active || (sticky_bias && sample >= a.at))
                e.bias = a.magnitude;
            break;
        case ActionKind::DegradedAccel:
            if (active)
                e.accelFactor = a.magnitude;
            break;
        case ActionKind::RecalPressure:
            if (active)
                e.pressure = true;
            break;
        default:
            break;
        }
    }
    return e;
}

/** Lower an effective state onto a FaultConfig. */
sim::FaultConfig
configFor(const EffectiveFaults &e, bool crash_now)
{
    sim::FaultConfig cfg;
    if (e.burstProb > 0.0) {
        if (e.burstMode < 0) {
            cfg = sim::FaultConfig::uniformCorruption(e.burstProb);
        } else {
            switch (static_cast<sim::FaultMode>(e.burstMode)) {
            case sim::FaultMode::DroppedMeasurement:
                cfg.dropProb = e.burstProb;
                break;
            case sim::FaultMode::NanCounters:
                cfg.nanProb = e.burstProb;
                break;
            case sim::FaultMode::ZeroCounters:
                cfg.zeroProb = e.burstProb;
                break;
            case sim::FaultMode::SaturatedCounters:
                cfg.saturateProb = e.burstProb;
                break;
            case sim::FaultMode::ThroughputOutlier:
                cfg.outlierProb = e.burstProb;
                break;
            case sim::FaultMode::TruncatedBatch:
                cfg.truncateBatchProb = e.burstProb;
                break;
            case sim::FaultMode::DegradedAccel:
                cfg.degradedAccelEnabled = true;
                break;
            }
        }
    }
    cfg.biasFactor = e.bias;
    if (e.accelFactor > 0.0) {
        cfg.degradedAccelEnabled = true;
        cfg.degradedAccelFactor = e.accelFactor;
    }
    cfg.crashAfterBatches = crash_now ? 0 : -1;
    return cfg;
}

CheckpointCrashPoint
crashPointFor(int variant)
{
    switch (variant) {
    case 1:
        return CheckpointCrashPoint::BeforeTempWrite;
    case 2:
        return CheckpointCrashPoint::MidTempWrite;
    case 3:
        return CheckpointCrashPoint::BeforeRename;
    case 4:
        return CheckpointCrashPoint::BeforePrune;
    default:
        return CheckpointCrashPoint::None;
    }
}

core::MonitorOptions
chaosMonitorOptions()
{
    core::MonitorOptions mopts;
    mopts.cooldown = 6;
    return mopts;
}

core::SupervisorOptions
chaosSupervisorOptions()
{
    core::SupervisorOptions sopts;
    sopts.failureThreshold = 2;
    sopts.baseBackoffSamples = 4;
    sopts.backoffFactor = 2.0;
    sopts.maxBackoffSamples = 16;
    sopts.maxRecalibrations = 16;
    return sopts;
}

// ---------------------------------------------------------------
// Autopilot plans
// ---------------------------------------------------------------

RunOutcome
runAutopilotPlan(ChaosWorld &world, const FaultPlan &plan,
                 const RunnerOptions &opts)
{
    RunOutcome out;
    const bool stickyBias = opts.plant == kPlantStickyBias;
    auto schedule = core::toSchedule(plan.scenario);
    const std::size_t samples = planSamples(plan);

    // Per-plan seeded state over the shared world.
    world.bed.setNoiseState(Rng(deriveSeed(plan.seed, 101)).state());
    world.faulty.setFaultRngState(
        Rng(deriveSeed(plan.seed, 102)).state());
    world.faulty.setConfig({});
    core::TomurModel model = world.pristine;

    auto store_dir = freshSubdir(opts.workDir, "ckpt");
    CheckpointOptions copts;
    copts.generations = 3;
    copts.fsync = false;
    CheckpointStore store(store_dir, copts);

    std::optional<core::PredictionMonitor> monitor;
    monitor.emplace(chaosMonitorOptions());
    const auto sopts = chaosSupervisorOptions();

    auto harvestFaultStats = [&] {
        const auto &s = world.faulty.stats();
        out.faultsInjected += s.total();
        out.faultMeasurements += s.measurements;
        world.faulty.resetStats();
    };

    bool pressureActive = false;
    auto recal = [&](std::size_t, std::string *detail) -> Status {
        if (pressureActive) {
            // Deterministic deadline pressure: a 1-granule budget
            // the two probes below cannot fit into.
            Deadline d = Deadline::afterGranules(1);
            ScopedDeadline scope(d);
            checkDeadline("chaos.recalibrate");
            checkDeadline("chaos.recalibrate");
        }
        model = world.pristine;
        if (detail)
            *detail = "restored pristine model";
        return Status::ok();
    };
    std::optional<core::Supervisor> supervisor;
    supervisor.emplace(sopts, recal);

    core::ReplayContext ctx;
    ctx.trainer = world.trainer.get();
    ctx.model = &model;
    ctx.nf = world.nf.get();
    ctx.levels = world.levels;
    ctx.competitors = world.competitors;
    ctx.soloBed = &world.bed;
    ctx.measureBed = &world.faulty;
    ctx.label = world.nfName;

    // One-shot action bookkeeping lives here, outside the
    // checkpointed state: a crash that fired must not re-fire when
    // its sample is replayed after resume.
    std::vector<bool> fired(plan.actions.size(), false);
    bool sigKnown = false;
    EffectiveFaults lastSig;

    core::AutopilotOptions aopts;
    aopts.checkpointEverySamples = opts.checkpointEverySamples;
    aopts.beforeSample = [&](std::size_t sample) {
        EffectiveFaults e = effectiveAt(plan, sample, stickyBias);
        pressureActive = e.pressure;
        bool crashNow = false;
        for (std::size_t k = 0; k < plan.actions.size(); ++k) {
            if (fired[k] || plan.actions[k].at != sample)
                continue;
            if (plan.actions[k].kind == ActionKind::Crash) {
                crashNow = true;
                fired[k] = true;
            } else if (plan.actions[k].kind ==
                       ActionKind::CheckpointCrash) {
                store.setCrashPoint(
                    crashPointFor(plan.actions[k].variant));
                fired[k] = true;
            }
        }
        if (!sigKnown || crashNow || !(e == lastSig)) {
            harvestFaultStats();
            world.faulty.setConfig(configFor(e, crashNow));
            lastSig = e;
            sigKnown = true;
        }
    };

    std::uint64_t budget =
        opts.planDeadlineGranules > 0
            ? opts.planDeadlineGranules
            : 50000 + static_cast<std::uint64_t>(samples) * 2000;
    Deadline planDeadline = Deadline::afterGranules(budget);
    ScopedDeadline planScope(planDeadline);

    for (std::size_t attempt = 0; attempt <= opts.maxResumes;
         ++attempt) {
        sigKnown = false;
        aopts.resume = attempt > 0;
        try {
            auto res = core::runAutopilot(ctx, schedule, *monitor,
                                          *supervisor, &store,
                                          aopts);
            if (!res) {
                out.error = res.status().toString();
            } else {
                out.completed = true;
                out.samples = res.value().samples;
            }
            break;
        } catch (const SimulatedCrash &) {
            ++out.crashes;
            crashCounter().inc();
            store.setCrashPoint(CheckpointCrashPoint::None);
            harvestFaultStats();
            if (attempt == opts.maxResumes) {
                out.error = "crash-resume budget exhausted";
                break;
            }
            // A restart rebuilds the monitor/supervisor and lets
            // the autopilot restore them from the checkpoint.
            monitor.emplace(chaosMonitorOptions());
            supervisor.emplace(sopts, recal);
            ++out.resumes;
            resumeCounter().inc();
        } catch (const DeadlineExceeded &d) {
            out.hung = true;
            out.hangWhere = d.where();
            break;
        } catch (const std::exception &e) {
            out.error = e.what();
            break;
        }
    }
    harvestFaultStats();
    world.faulty.setConfig({});

    out.samples = out.samples == 0 ? samples : out.samples;
    out.monitor = monitor->summary();
    out.supervisor = supervisor->summary();
    out.supervisorEvents = supervisor->events();

    // Last disturbance: the later of the last regime-change monitor
    // event and the end of the last planned (non-crash) fault span.
    for (const auto &ev : monitor->events()) {
        if (ev.kind != core::MonitorEventKind::AccuracyRecovered)
            out.lastDisturbanceSample =
                std::max(out.lastDisturbanceSample, ev.sample);
    }
    for (const auto &a : plan.actions) {
        if (a.kind == ActionKind::Crash ||
            a.kind == ActionKind::CheckpointCrash)
            continue;
        out.lastDisturbanceSample =
            std::max(out.lastDisturbanceSample, a.at + a.span);
    }

    // State-integrity probes.
    auto rec = store.loadLatestValid();
    if (!rec &&
        rec.status().code() != StatusCode::NotFound) {
        out.checkpointHealthy = false;
        out.checkpointDetail = rec.status().toString();
    }
    {
        std::ostringstream s1;
        Status saved = model.save(s1);
        if (!saved.isOk()) {
            out.modelRoundTripOk = false;
            out.modelDetail = saved.toString();
        } else {
            core::TomurModel reloaded;
            std::istringstream in(s1.str());
            Status loaded = reloaded.load(in);
            std::ostringstream s2;
            if (loaded.isOk())
                loaded = reloaded.save(s2);
            if (!loaded.isOk()) {
                out.modelRoundTripOk = false;
                out.modelDetail = loaded.toString();
            } else if (s2.str() != s1.str()) {
                out.modelRoundTripOk = false;
                out.modelDetail =
                    "save/load/save bytes diverged";
            }
        }
    }

    std::ostringstream streams;
    monitor->exportJsonl(streams);
    supervisor->exportJsonl(streams);
    out.streamHash = fnv1a64(streams.str());
    return out;
}

// ---------------------------------------------------------------
// Serve plans
// ---------------------------------------------------------------

/** One scanned HTTP response off a client's receive buffer. */
struct ScannedResponse
{
    int status = 0;
    bool retryAfter = false;
};

/** Scan complete responses off `rx` (consuming them). */
std::vector<ScannedResponse>
scanResponses(std::string &rx)
{
    std::vector<ScannedResponse> out;
    for (;;) {
        std::size_t hdrEnd = rx.find("\r\n\r\n");
        if (hdrEnd == std::string::npos)
            break;
        std::string headers = rx.substr(0, hdrEnd);
        std::size_t bodyLen = 0;
        std::size_t cl = headers.find("Content-Length:");
        if (cl != std::string::npos)
            bodyLen = std::strtoul(headers.c_str() + cl + 15,
                                   nullptr, 10);
        std::size_t total = hdrEnd + 4 + bodyLen;
        if (rx.size() < total)
            break;
        ScannedResponse r;
        std::size_t sp = headers.find(' ');
        if (sp != std::string::npos)
            r.status = std::atoi(headers.c_str() + sp + 1);
        r.retryAfter =
            headers.find("Retry-After:") != std::string::npos;
        out.push_back(r);
        rx.erase(0, total);
    }
    return out;
}

std::string
corpusFileName(int variant)
{
    switch (variant) {
    case 0:
        return "model-truncated.v2";
    case 1:
        return "model-bitflip.v2";
    default:
        return "model-empty.v2";
    }
}

RunOutcome
runServePlan(ChaosWorld &world, const FaultPlan &plan,
             const RunnerOptions &opts)
{
    RunOutcome out;
    out.serveTarget = true;

    // Corrupt-model corpus for reload drills.
    auto model_dir = freshSubdir(opts.workDir, "models");
    auto writeFile = [&](const std::string &name,
                         const std::string &bytes) {
        std::ofstream f(fs::path(model_dir) / name,
                        std::ios::binary | std::ios::trunc);
        f << bytes;
    };
    const std::string &good = world.pristineBytes;
    writeFile("model-truncated.v2", good.substr(0, good.size() / 2));
    {
        std::string flipped = good;
        if (!flipped.empty())
            flipped[flipped.size() / 2] =
                static_cast<char>(flipped[flipped.size() / 2] ^ 0x20);
        writeFile("model-bitflip.v2", flipped);
    }
    writeFile("model-empty.v2", "");

    serve::ModelRegistry registry;
    registry.install(world.pristine, "chaos-pristine");
    const std::uint64_t baselineVersion = registry.version();
    serve::ModelService service(registry, world.levels,
                                world.nfName);

    serve::ServeOptions so;
    so.maxConnections = 6;
    so.maxQueueDepth = 4;
    so.maxRequestsPerStep = 2;
    so.bucketCapacity = 8.0;
    serve::Server server(so, service);
    serve::MemoryListener listener;
    server.setListener(&listener);

    auto &reloadFails =
        metrics().counter("tomur_server_reload_failures_total");
    const double reloadFailsBefore = reloadFails.value();
    std::size_t corruptReloads = 0;

    // Client population: rotating keep-alive clients whose server
    // half may pass through a fault-injecting transport.
    struct Client
    {
        std::shared_ptr<serve::MemoryTransport> pipe;
        std::string rx;
    };
    std::vector<Client> clients;
    std::size_t transportFaultSeq = 0;
    auto connect = [&](const std::string &id, std::size_t step) {
        Client c;
        c.pipe = std::make_shared<serve::MemoryTransport>();
        std::unique_ptr<serve::Transport> t =
            std::make_unique<serve::SharedTransport>(c.pipe);
        for (const auto &a : plan.actions) {
            if (a.kind == ActionKind::TransportFault &&
                step >= a.at && step < a.at + a.span) {
                serve::TransportFaults tf;
                double rate = a.magnitude;
                switch (a.variant) {
                case 0:
                    tf.shortReadRate = rate;
                    break;
                case 1:
                    tf.shortWriteRate = rate;
                    break;
                case 2:
                    tf.eagainRate = rate;
                    break;
                default:
                    tf.disconnectRate = rate * 0.3;
                    break;
                }
                tf.seed =
                    deriveSeed(plan.seed, 300 + transportFaultSeq++);
                t = std::make_unique<serve::FaultInjectingTransport>(
                    std::move(t), tf);
                break;
            }
        }
        server.addConnection(std::move(t), id);
        clients.push_back(std::move(c));
    };

    Rng rng(deriveSeed(plan.seed, 104));
    const double flowChoices[4] = {8000.0, 16000.0, 32000.0,
                                   64000.0};
    auto predictBody = [&] {
        return strf("{\"flows\": %.0f, \"size\": 512, "
                    "\"mtbr\": 400}",
                    flowChoices[rng.uniformInt(std::uint64_t{4})]);
    };
    auto post = [&](Client &c, const std::string &target,
                    const std::string &body) {
        c.pipe->clientWrite(
            strf("POST %s HTTP/1.1\r\nContent-Length: %zu\r\n\r\n%s",
                 target.c_str(), body.size(), body.c_str()));
    };

    std::ostringstream transcript;
    bool drained_early = false;
    connect("chaos-0", 0);
    for (std::size_t step = 0; step < kServePlanSteps; ++step) {
        for (const auto &a : plan.actions) {
            if (a.at != step)
                continue;
            if (a.kind == ActionKind::CorruptReload) {
                ++corruptReloads;
                if (!clients.empty()) {
                    post(clients.back(), "/reload",
                         strf("{\"model\": \"%s\"}",
                              (fs::path(model_dir) /
                               corpusFileName(a.variant))
                                  .string()
                                  .c_str()));
                }
                if (opts.plant == kPlantRegistryNoCommit) {
                    // The planted regression: a registry whose
                    // commit-on-success guard is disabled publishes
                    // the failed load anyway. install() is the
                    // unconditional path, so it simulates exactly
                    // that — and the invariant below catches it by
                    // observing the version move, not by being told.
                    registry.install(core::TomurModel{},
                                     "chaos-planted-bad-load");
                }
            } else if (a.kind == ActionKind::DrainDrill) {
                server.beginDrain();
                drained_early = true;
            }
        }
        // Rotate the population so transport faults actually apply
        // to fresh connections inside their span.
        if (step > 0 && step % 7 == 0 && !server.draining())
            connect(strf("chaos-%zu", step), step);

        if (!server.draining() && !clients.empty()) {
            post(clients.front(), "/predict", predictBody());
            for (const auto &a : plan.actions) {
                if (a.kind == ActionKind::QueueStorm &&
                    step >= a.at && step < a.at + a.span) {
                    auto n = static_cast<std::size_t>(a.magnitude);
                    for (std::size_t i = 0; i < n; ++i)
                        post(clients.back(), "/predict",
                             predictBody());
                }
            }
        }

        server.step();
        server.tickTokens(0.5);

        for (std::size_t ci = 0; ci < clients.size(); ++ci) {
            clients[ci].rx += clients[ci].pipe->clientRead();
            for (const auto &r : scanResponses(clients[ci].rx)) {
                ++out.serveResponses;
                int cls = r.status / 100;
                ++out.serveStatus[cls >= 1 && cls <= 5 ? cls : 0];
                if (r.status == 500)
                    ++out.serveInternalErrors;
                if ((r.status == 429 || r.status == 503) &&
                    !r.retryAfter && out.retryAfterOnRefusals) {
                    out.retryAfterOnRefusals = false;
                    out.refusalDetail = strf(
                        "status %d at step %zu without Retry-After",
                        r.status, step);
                }
                transcript << step << ' ' << r.status << ' '
                           << (r.retryAfter ? 1 : 0) << '\n';
            }
        }
    }

    if (!server.draining())
        server.beginDrain();
    std::size_t drainSteps = 0;
    while (!server.drained() && drainSteps < 200) {
        server.step();
        ++drainSteps;
    }
    out.drainConverged = server.drained();
    (void)drained_early;

    out.serveInternalErrors += server.stats().internalErrors;

    // Reload integrity: failed hot swaps must keep the prior
    // version serving and be counted.
    if (corruptReloads > 0) {
        if (registry.version() != baselineVersion) {
            out.reloadKeptServing = false;
            out.reloadDetail = strf(
                "registry version %llu after %zu failed reloads "
                "(baseline %llu)",
                static_cast<unsigned long long>(registry.version()),
                corruptReloads,
                static_cast<unsigned long long>(baselineVersion));
        }
        // Not every issued reload reaches the registry (queue
        // storms and drains can shed it first), so the counter is
        // checked against the swaps the registry actually saw fail.
        if (reloadFails.value() - reloadFailsBefore <
            static_cast<double>(registry.swapsFailed()) - 0.5) {
            out.reloadKeptServing = false;
            out.reloadDetail +=
                "; tomur_server_reload_failures_total undercounted";
        }
        // The prior model must still answer.
        serve::HttpRequest probe;
        probe.method = "POST";
        probe.target = "/predict";
        probe.body = "{\"flows\": 16000, \"size\": 512, "
                     "\"mtbr\": 400}";
        auto reply = service.handle(probe);
        if (reply.status != 200 ||
            reply.body.find("predicted_pps") == std::string::npos) {
            out.reloadKeptServing = false;
            out.reloadDetail += strf(
                "; post-reload predict answered %d", reply.status);
        }
    }

    transcript << "stats " << out.serveResponses << ' '
               << server.stats().shed << ' '
               << server.stats().throttled << ' '
               << server.stats().acceptShed << ' '
               << server.stats().internalErrors << '\n';
    out.streamHash = fnv1a64(transcript.str());
    out.completed = true;
    out.samples = kServePlanSteps;
    return out;
}

} // namespace

RunOutcome
runPlan(ChaosWorld &world, const FaultPlan &plan,
        const RunnerOptions &opts)
{
    plansCounter().inc();
    if (plan.target == PlanTarget::Serve)
        return runServePlan(world, plan, opts);
    return runAutopilotPlan(world, plan, opts);
}

} // namespace tomur::chaos
