/**
 * @file
 * The closed invariant set every chaos run is checked against, and
 * the RunOutcome record the runner fills for the checkers.
 *
 * Invariants are end-to-end properties of the whole control loop,
 * not per-module assertions:
 *
 *  - no_hang: the run finished inside its cooperative granule
 *    budget (an escaped DeadlineExceeded is a hang, caught by the
 *    plan-level ScopedDeadline, never by wall clock).
 *  - no_corrupt_state: the surviving checkpoint generation still
 *    loads (or cleanly reports NotFound), and the model's
 *    save/load/save round trip is byte-identical — injected crashes
 *    may lose progress, never integrity.
 *  - bounded_recovery: once the last disturbance has lifted and a
 *    clean steady tail of `recoveryBoundSamples` has elapsed, the
 *    monitor's recovery window must be closed.
 *  - graceful_degradation: the run completed (crash-resume loops
 *    converge, errors surface as Status not stream corruption);
 *    the breaker opens when consecutive recalibrations fail; the
 *    retry budget exhausts at most once. For serve plans: zero 500s
 *    under injected faults, Retry-After on every 429/503 refusal, a
 *    failed hot reload keeps the prior model version serving, and
 *    drain converges.
 *  - determinism: re-running the plan reproduces the identical
 *    event-stream fingerprint (the campaign samples this; the
 *    cross-width variant is pinned by the chaos golden fixture).
 */

#ifndef TOMUR_CHAOS_INVARIANTS_HH
#define TOMUR_CHAOS_INVARIANTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/plan.hh"
#include "tomur/supervisor.hh"

namespace tomur::chaos {

/** The invariant set (order is the wire/report order). */
enum class InvariantKind
{
    NoHang,
    NoCorruptState,
    BoundedRecovery,
    GracefulDegradation,
    Determinism,
};

constexpr int numInvariants = 5;

/** Wire name ("no_hang", ...). */
const char *invariantName(InvariantKind kind);

/** One checker verdict. */
struct InvariantVerdict
{
    InvariantKind kind = InvariantKind::NoHang;
    bool passed = true;
    std::string detail; ///< failure explanation (empty on pass)
};

/** Everything the runner observed about one plan execution. */
struct RunOutcome
{
    bool completed = false; ///< the driver loop ran to the end
    std::size_t samples = 0;
    std::size_t crashes = 0; ///< SimulatedCrash caught
    std::size_t resumes = 0; ///< checkpoint resumes performed
    bool hung = false;       ///< DeadlineExceeded escaped the run
    std::string hangWhere;
    std::string error; ///< non-ok Status / unexpected exception

    /** Fault-injector accounting, accumulated across every
     *  reconfigure (replayed samples after a crash count again —
     *  deterministically, so the stream fingerprint still pins). */
    std::size_t faultsInjected = 0;
    std::size_t faultMeasurements = 0;

    core::MonitorSummary monitor;
    core::SupervisorSummary supervisor;
    std::vector<core::SupervisorEvent> supervisorEvents;
    /** Last sample (1-based) a disturbance was still visible:
     *  regime-change monitor events and the end of the last planned
     *  fault span, whichever is later. */
    std::size_t lastDisturbanceSample = 0;

    bool checkpointHealthy = true;
    std::string checkpointDetail;
    bool modelRoundTripOk = true;
    std::string modelDetail;

    /** FNV-1a 64 over the canonical event streams (autopilot:
     *  monitor+supervisor JSONL; serve: the response/status
     *  transcript). The determinism invariant compares this. */
    std::uint64_t streamHash = 0;

    // Serve-target observations.
    bool serveTarget = false;
    std::size_t serveResponses = 0;
    std::size_t serveStatus[6] = {}; ///< [0] none, [1..5] 1xx..5xx
    std::size_t serveInternalErrors = 0;
    std::size_t transportFaultsInjected = 0;
    bool retryAfterOnRefusals = true;
    std::string refusalDetail;
    bool reloadKeptServing = true;
    std::string reloadDetail;
    bool drainConverged = true;
};

/** Checker tuning. */
struct InvariantOptions
{
    /** Clean samples after the last disturbance within which the
     *  monitor's recovery window must close. */
    std::size_t recoveryBoundSamples = 40;
    /** The breaker options the runner used (the graceful-degradation
     *  checker re-derives the expected trip points from them). */
    std::size_t failureThreshold = 2;
};

/**
 * Evaluate every invariant except Determinism (which needs a second
 * run; the campaign appends it). Returns verdicts in enum order.
 */
std::vector<InvariantVerdict>
checkInvariants(const FaultPlan &plan, const RunOutcome &outcome,
                const InvariantOptions &opts);

} // namespace tomur::chaos

#endif // TOMUR_CHAOS_INVARIANTS_HH
