/**
 * @file
 * Failure shrinking: reduce a violating FaultPlan to a minimal
 * action sequence that still violates the same invariant.
 *
 * The algorithm is delta debugging (ddmin) over the plan's action
 * list. Each candidate is the original plan with a subset of actions
 * removed; a candidate "still fails" when re-running it violates the
 * *same* InvariantKind as the original run — matching on the kind
 * (not the detail string) keeps the shrinker from chasing secondary
 * symptoms while still refusing to swap one bug for another.
 *
 * Determinism: candidates are derived purely from the failing plan
 * (seeds, scenario, and surviving actions are copied verbatim), and
 * every probe runs through the same seeded runner, so a shrink of
 * the same failing plan always lands on the same minimal plan.
 */

#ifndef TOMUR_CHAOS_SHRINK_HH
#define TOMUR_CHAOS_SHRINK_HH

#include "chaos/invariants.hh"
#include "chaos/plan.hh"
#include "chaos/runner.hh"

namespace tomur::chaos {

/** Shrink tuning. */
struct ShrinkOptions
{
    /** Probe-run budget: the shrinker stops refining (keeping its
     *  best-so-far plan) once this many candidate runs executed. */
    std::size_t maxRuns = 64;
};

/** A finished shrink. */
struct ShrinkResult
{
    FaultPlan plan;             ///< minimal still-violating plan
    InvariantKind kind =        ///< the invariant it still violates
        InvariantKind::NoHang;
    std::string detail;         ///< its failure detail
    std::size_t iterations = 0; ///< candidate runs executed
};

/**
 * Minimize `failing` (which violated `kind` when run under `opts`).
 * Returns the smallest plan found that still violates `kind`; if no
 * strict subset reproduces it, the result is the original plan with
 * zero removals (iterations still counts the probes spent).
 */
ShrinkResult shrinkPlan(ChaosWorld &world, const FaultPlan &failing,
                        InvariantKind kind,
                        const RunnerOptions &run_opts,
                        const ShrinkOptions &shrink_opts = {});

} // namespace tomur::chaos

#endif // TOMUR_CHAOS_SHRINK_HH
