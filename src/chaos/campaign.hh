/**
 * @file
 * Campaign orchestration: sweep a seeded plan space, run every plan
 * through the runner, evaluate the invariant set, sample the
 * determinism invariant with re-runs, shrink the first violation,
 * and fold everything into a JSONL stream for reports and goldens.
 *
 * The plan space has two tiers:
 *  - combinatorial: one plan per unordered pair of sim::FaultModes
 *    (21 plans) — the cheap exhaustive floor over mode interactions;
 *  - random: `runs` seeded plans from the quantized generators,
 *    every `serveEveryN`-th targeting the serve stack instead of the
 *    autopilot.
 *
 * Everything is serial and seeded; the JSONL output is byte-stable
 * across thread-pool widths (the chaos golden fixture pins this at
 * TOMUR_THREADS=1 and 8).
 */

#ifndef TOMUR_CHAOS_CAMPAIGN_HH
#define TOMUR_CHAOS_CAMPAIGN_HH

#include <string>
#include <vector>

#include "chaos/invariants.hh"
#include "chaos/plan.hh"
#include "chaos/runner.hh"
#include "chaos/shrink.hh"

namespace tomur::chaos {

/** Campaign tuning. */
struct CampaignOptions
{
    std::uint64_t seed = 7;
    /** Random-tier plan count (the combinatorial tier's 21 plans
     *  are added on top unless disabled). */
    std::size_t runs = 50;
    bool combinatorial = true;
    /** Every Nth random plan drives the serve stack (0 = never). */
    std::size_t serveEveryN = 3;
    /** Every Nth plan is re-run and its event-stream fingerprint
     *  compared (the determinism invariant); 0 = never. */
    std::size_t determinismEveryN = 8;
    /** Shrink the first violating plan. */
    bool shrink = true;
    ShrinkOptions shrinkOpts;
    RunnerOptions runner; ///< workDir is required
};

/** One plan's row in the campaign ledger. */
struct PlanReport
{
    std::size_t index = 0;
    FaultPlan plan;
    RunOutcome outcome;
    std::vector<InvariantVerdict> verdicts;
    std::size_t violations = 0;
};

/** A finished campaign. */
struct CampaignResult
{
    std::size_t plans = 0;
    std::size_t violations = 0; ///< failed verdicts, all plans
    std::size_t violatingPlans = 0;
    std::size_t crashes = 0;
    std::size_t resumes = 0;
    std::size_t faultsInjected = 0;
    std::size_t determinismReruns = 0;
    std::size_t shrinkIterations = 0;
    std::size_t invariantFailures[numInvariants] = {};

    /** First violation, shrunk (when shrinking is on). */
    bool haveRepro = false;
    std::size_t firstViolationIndex = 0;
    InvariantKind firstViolationKind = InvariantKind::NoHang;
    std::string firstViolationDetail;
    FaultPlan shrunkPlan;
    std::string reproText; ///< emitPlan(shrunkPlan)

    std::vector<PlanReport> reports;
    /** The canonical JSONL ledger: one line per plan plus a
     *  `chaos_summary` trailer. Byte-stable for a given seed. */
    std::string jsonl;
};

/** Run a full campaign. `opts.runner.workDir` must be set. */
CampaignResult runCampaign(ChaosWorld &world,
                           const CampaignOptions &opts);

} // namespace tomur::chaos

#endif // TOMUR_CHAOS_CAMPAIGN_HH
