#include "chaos/invariants.hh"

#include "common/strutil.hh"

namespace tomur::chaos {

namespace {

const char *const kInvariantNames[numInvariants] = {
    "no_hang",
    "no_corrupt_state",
    "bounded_recovery",
    "graceful_degradation",
    "determinism",
};

InvariantVerdict
verdict(InvariantKind kind, bool passed, std::string detail = {})
{
    InvariantVerdict v;
    v.kind = kind;
    v.passed = passed;
    v.detail = passed ? std::string() : std::move(detail);
    return v;
}

InvariantVerdict
checkNoHang(const RunOutcome &o)
{
    if (o.hung) {
        return verdict(InvariantKind::NoHang, false,
                       "deadline exceeded at " + o.hangWhere);
    }
    return verdict(InvariantKind::NoHang, true);
}

InvariantVerdict
checkNoCorruptState(const RunOutcome &o)
{
    if (!o.checkpointHealthy) {
        return verdict(InvariantKind::NoCorruptState, false,
                       "checkpoint store: " + o.checkpointDetail);
    }
    if (!o.modelRoundTripOk) {
        return verdict(InvariantKind::NoCorruptState, false,
                       "model round trip: " + o.modelDetail);
    }
    return verdict(InvariantKind::NoCorruptState, true);
}

InvariantVerdict
checkBoundedRecovery(const RunOutcome &o,
                     const InvariantOptions &opts)
{
    if (o.serveTarget || !o.completed)
        return verdict(InvariantKind::BoundedRecovery, true);
    if (!o.monitor.recoveryOpen)
        return verdict(InvariantKind::BoundedRecovery, true);
    // A window still open at the end is only a violation when a
    // clean tail long enough to recover in has actually elapsed.
    std::size_t quietSince =
        o.lastDisturbanceSample + opts.recoveryBoundSamples;
    if (o.samples >= quietSince) {
        return verdict(
            InvariantKind::BoundedRecovery, false,
            strf("recovery window still open %zu samples after "
                 "the last disturbance (sample %zu of %zu)",
                 o.samples - o.lastDisturbanceSample,
                 o.lastDisturbanceSample, o.samples));
    }
    return verdict(InvariantKind::BoundedRecovery, true);
}

InvariantVerdict
checkGracefulDegradation(const RunOutcome &o,
                         const InvariantOptions &opts)
{
    const auto kind = InvariantKind::GracefulDegradation;
    if (!o.completed) {
        return verdict(kind, false,
                       o.error.empty() ? "run did not complete"
                                       : "run failed: " + o.error);
    }
    if (o.serveTarget) {
        // 503/429 refusals with Retry-After are the *desired*
        // degradation mode; only 500s (or server-side internal
        // error counts) mean a fault leaked out as breakage.
        if (o.serveInternalErrors > 0) {
            return verdict(
                kind, false,
                strf("%zu internal errors / 500 responses under "
                     "injected faults",
                     o.serveInternalErrors));
        }
        if (!o.retryAfterOnRefusals) {
            return verdict(kind, false,
                           "refusal without Retry-After: " +
                               o.refusalDetail);
        }
        if (!o.reloadKeptServing) {
            return verdict(kind, false,
                           "failed reload did not keep serving: " +
                               o.reloadDetail);
        }
        if (!o.drainConverged) {
            return verdict(kind, false,
                           "drain did not converge");
        }
        return verdict(kind, true);
    }

    // The breaker must open when failures pile up: walk the event
    // stream and require a BreakerOpened immediately after every
    // run of `failureThreshold` consecutive failures.
    std::size_t consecutive = 0;
    for (std::size_t i = 0; i < o.supervisorEvents.size(); ++i) {
        const auto &ev = o.supervisorEvents[i];
        switch (ev.kind) {
        case core::SupervisorEventKind::RecalibrationFailed:
            ++consecutive;
            if (consecutive >= opts.failureThreshold) {
                bool opened =
                    i + 1 < o.supervisorEvents.size() &&
                    o.supervisorEvents[i + 1].kind ==
                        core::SupervisorEventKind::BreakerOpened;
                if (!opened) {
                    return verdict(
                        kind, false,
                        strf("%zu consecutive recalibration "
                             "failures at sample %zu without the "
                             "breaker opening",
                             consecutive, ev.sample));
                }
                consecutive = 0;
            }
            break;
        case core::SupervisorEventKind::RecalibrationSucceeded:
        case core::SupervisorEventKind::BreakerClosed:
            consecutive = 0;
            break;
        default:
            break;
        }
    }
    if (o.supervisor
            .eventCounts[static_cast<int>(
                core::SupervisorEventKind::RetryBudgetExhausted)] >
        1) {
        return verdict(kind, false,
                       "RetryBudgetExhausted fired more than once");
    }
    return verdict(kind, true);
}

} // namespace

const char *
invariantName(InvariantKind kind)
{
    return kInvariantNames[static_cast<int>(kind)];
}

std::vector<InvariantVerdict>
checkInvariants(const FaultPlan &plan, const RunOutcome &outcome,
                const InvariantOptions &opts)
{
    (void)plan;
    std::vector<InvariantVerdict> out;
    out.push_back(checkNoHang(outcome));
    out.push_back(checkNoCorruptState(outcome));
    out.push_back(checkBoundedRecovery(outcome, opts));
    out.push_back(checkGracefulDegradation(outcome, opts));
    return out;
}

} // namespace tomur::chaos
