/**
 * @file
 * Versioned in-memory model registry with atomic hot-swap.
 *
 * The serving daemon must never answer a query with half a model.
 * The registry holds the active model behind a shared_ptr-to-const:
 * readers copy the pointer (cheap, under a short mutex hold) and keep
 * predicting against that immutable snapshot for the whole request,
 * while a swap builds the incoming model *off to the side* and only
 * publishes it once fully loaded. A failed load — corrupt file,
 * truncated stream, wrong NF — leaves the previous version installed
 * and serving; a loaded-but-degraded model is still published (its
 * predictions fall through the PR 1 full -> memory-only -> solo
 * degradation chain, surfaced via confidence), because a limping
 * model beats a stale one only when the operator says so — the swap
 * result reports degradation so they can decide.
 *
 * Swap attempts are serialized by a separate mutex so two concurrent
 * reloads cannot interleave versions; readers are never blocked by a
 * loading model, only by the pointer exchange.
 */

#ifndef TOMUR_SERVE_REGISTRY_HH
#define TOMUR_SERVE_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.hh"
#include "tomur/predictor.hh"

namespace tomur::serve {

/** The published model snapshot a request predicts against. */
struct ModelSnapshot
{
    std::shared_ptr<const core::TomurModel> model;
    std::uint64_t version = 0; ///< 0 = nothing installed yet
    std::string source;        ///< provenance ("trained", a path)

    explicit operator bool() const { return model != nullptr; }
};

class ModelRegistry
{
  public:
    /** Loader for swapFrom: produce the incoming model or the
     *  Status explaining why there is none. */
    using Loader = std::function<Result<core::TomurModel>()>;

    /** The active snapshot (model may be null before the first
     *  install). Safe from any thread. */
    ModelSnapshot current() const;

    /** Active version (0 until the first install). */
    std::uint64_t version() const;

    /**
     * Publish a model unconditionally (initial install). Returns the
     * new version.
     */
    std::uint64_t install(core::TomurModel model, std::string source);

    /**
     * Atomic hot-swap: run `loader`, and only if it succeeds publish
     * the result. On failure the previous model keeps serving and
     * the error is returned. Returns the new version on success.
     */
    Result<std::uint64_t> swapFrom(const Loader &loader,
                                   std::string source);

    /** swapFrom over TomurModel::load() on a file. */
    Result<std::uint64_t> swapFromFile(const std::string &path);

    /** Swap outcome counters (also mirrored into tomur_server_*
     *  metrics). */
    std::size_t swapsSucceeded() const;
    std::size_t swapsFailed() const;

  private:
    std::uint64_t publish(core::TomurModel model,
                          std::string source);

    mutable std::mutex mutex_; ///< guards the snapshot fields
    std::shared_ptr<const core::TomurModel> model_;
    std::uint64_t version_ = 0;
    std::string source_;
    std::size_t swapsSucceeded_ = 0;
    std::size_t swapsFailed_ = 0;

    std::mutex swapMutex_; ///< serializes swap attempts end-to-end
};

} // namespace tomur::serve

#endif // TOMUR_SERVE_REGISTRY_HH
