#include "serve/http.hh"

#include <algorithm>
#include <cctype>

#include "common/strutil.hh"

namespace tomur::serve {

namespace {

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Strip one trailing '\r' (lines are split on '\n'). */
void
chompCr(std::string &line)
{
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
}

/** HTTP token characters (RFC 9110 tchar, the subset that matters). */
bool
isTokenChar(char c)
{
    unsigned char u = static_cast<unsigned char>(c);
    return std::isalnum(u) || c == '-' || c == '_' || c == '.' ||
           c == '!' || c == '#' || c == '$' || c == '%' ||
           c == '&' || c == '\'' || c == '*' || c == '+' ||
           c == '^' || c == '`' || c == '|' || c == '~';
}

/** Printable ASCII (targets, header values must not smuggle
 *  control bytes into logs or responses). */
bool
isPrintable(char c)
{
    unsigned char u = static_cast<unsigned char>(c);
    return u >= 0x20 && u < 0x7f;
}

std::string
trimSpace(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/**
 * Strict non-negative integer parse for Content-Length: digits only,
 * no sign, no whitespace, and an overflow guard well under the point
 * where the value could matter (the caller caps it far lower anyway).
 */
Result<std::size_t>
parseContentLength(const std::string &s)
{
    if (s.empty() || s.size() > 12)
        return Status::invalidArgument(
            "Content-Length is empty or absurdly long");
    std::size_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return Status::invalidArgument(
                "Content-Length is not a plain integer");
        v = v * 10 + static_cast<std::size_t>(c - '0');
    }
    return v;
}

} // namespace

// ---------------------------------------------------------------
// HttpRequest
// ---------------------------------------------------------------

std::string
HttpRequest::header(const std::string &name) const
{
    for (const auto &[k, v] : headers) {
        if (k == name)
            return v;
    }
    return "";
}

std::string
HttpRequest::path() const
{
    std::size_t q = target.find('?');
    return q == std::string::npos ? target : target.substr(0, q);
}

std::string
HttpRequest::queryParam(const std::string &name) const
{
    std::size_t q = target.find('?');
    if (q == std::string::npos)
        return "";
    for (const auto &kv : split(target.substr(q + 1), '&')) {
        std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
            if (kv == name)
                return "1";
            continue;
        }
        if (kv.substr(0, eq) == name)
            return kv.substr(eq + 1);
    }
    return "";
}

// ---------------------------------------------------------------
// HttpRequestParser
// ---------------------------------------------------------------

HttpRequestParser::HttpRequestParser(ParserLimits limits)
    : limits_(limits)
{
}

bool
HttpRequestParser::midRequest() const
{
    return state_ != State::RequestLine || !buf_.empty();
}

Status
HttpRequestParser::poison(int http_status, Status why)
{
    error_ = std::move(why);
    httpStatus_ = http_status;
    buf_.clear();
    buf_.shrink_to_fit();
    cur_ = HttpRequest{};
    return error_;
}

Status
HttpRequestParser::feed(const char *data, std::size_t n)
{
    if (failed())
        return error_;
    buf_.append(data, n);

    for (;;) {
        if (state_ == State::Body) {
            // Append only bytes that actually arrived; bodyExpected_
            // was validated against maxBodyBytes before we got here,
            // so this loop can never buffer more than the cap.
            std::size_t need = bodyExpected_ - cur_.body.size();
            std::size_t take = std::min(need, buf_.size());
            cur_.body.append(buf_, 0, take);
            buf_.erase(0, take);
            if (cur_.body.size() < bodyExpected_)
                return Status::ok(); // wait for more bytes
            ready_.push_back(std::move(cur_));
            cur_ = HttpRequest{};
            state_ = State::RequestLine;
            headerBytes_ = 0;
            bodyExpected_ = 0;
            sawContentLength_ = false;
            continue;
        }

        // Line-oriented states. Cap the unterminated prefix before
        // looking for the newline so an endless line cannot grow the
        // buffer unboundedly.
        std::size_t cap = state_ == State::RequestLine
                              ? limits_.maxRequestLineBytes
                              : limits_.maxHeaderBytes;
        std::size_t nl = buf_.find('\n');
        if (nl == std::string::npos) {
            if (buf_.size() > cap) {
                return poison(
                    431, Status::invalidArgument(strf(
                             "unterminated %s exceeds %zu bytes",
                             state_ == State::RequestLine
                                 ? "request line"
                                 : "header line",
                             cap)));
            }
            return Status::ok(); // wait for more bytes
        }
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        chompCr(line);

        if (state_ == State::RequestLine) {
            if (line.empty())
                continue; // tolerate blank lines between requests
            if (line.size() > limits_.maxRequestLineBytes) {
                return poison(431,
                              Status::invalidArgument(
                                  "request line exceeds the cap"));
            }
            if (Status st = parseRequestLine(line); !st)
                return st;
            state_ = State::Headers;
            continue;
        }

        // State::Headers
        headerBytes_ += line.size() + 1;
        if (headerBytes_ > limits_.maxHeaderBytes) {
            return poison(431, Status::invalidArgument(strf(
                                   "headers exceed %zu bytes",
                                   limits_.maxHeaderBytes)));
        }
        if (line.empty()) {
            if (Status st = finishHeaders(); !st)
                return st;
            state_ = State::Body;
            continue;
        }
        if (cur_.headers.size() >= limits_.maxHeaders) {
            return poison(431,
                          Status::invalidArgument(strf(
                              "more than %zu headers",
                              limits_.maxHeaders)));
        }
        if (Status st = parseHeaderLine(line); !st)
            return st;
    }
}

Status
HttpRequestParser::parseRequestLine(const std::string &line)
{
    for (char c : line) {
        if (!isPrintable(c)) {
            return poison(400,
                          Status::invalidArgument(
                              "control byte in request line"));
        }
    }
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.find(' ', sp2 + 1) != std::string::npos) {
        return poison(400, Status::invalidArgument(
                               "request line is not "
                               "'METHOD TARGET VERSION'"));
    }
    std::string method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string version = line.substr(sp2 + 1);

    if (method.empty() || method.size() > 16 ||
        !std::all_of(method.begin(), method.end(), isTokenChar)) {
        return poison(400, Status::invalidArgument(
                               "malformed HTTP method"));
    }
    if (target.empty() || target[0] != '/') {
        return poison(400, Status::invalidArgument(
                               "target must start with '/'"));
    }
    if (version == "HTTP/1.1") {
        cur_.keepAlive = true;
    } else if (version == "HTTP/1.0") {
        cur_.keepAlive = false;
    } else {
        return poison(505, Status::invalidArgument(
                               "unsupported HTTP version '" +
                               version + "'"));
    }
    cur_.method = std::move(method);
    cur_.target = std::move(target);
    return Status::ok();
}

Status
HttpRequestParser::parseHeaderLine(const std::string &line)
{
    std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
        return poison(400, Status::invalidArgument(
                               "header line without 'Name:'"));
    }
    std::string name = line.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), isTokenChar)) {
        return poison(400, Status::invalidArgument(
                               "malformed header name"));
    }
    std::string value = trimSpace(line.substr(colon + 1));
    for (char c : value) {
        if (!isPrintable(c) && c != '\t') {
            return poison(400, Status::invalidArgument(
                               "control byte in header value"));
        }
    }
    cur_.headers.emplace_back(toLower(std::move(name)),
                              std::move(value));
    return Status::ok();
}

Status
HttpRequestParser::finishHeaders()
{
    bodyExpected_ = 0;
    sawContentLength_ = false;
    for (const auto &[name, value] : cur_.headers) {
        if (name == "content-length") {
            // Duplicate Content-Length is the classic request-
            // smuggling vector; reject rather than pick one.
            if (sawContentLength_) {
                return poison(400,
                              Status::invalidArgument(
                                  "duplicate Content-Length"));
            }
            auto len = parseContentLength(value);
            if (!len)
                return poison(400, len.status());
            if (len.value() > limits_.maxBodyBytes) {
                return poison(
                    413, Status::invalidArgument(strf(
                             "body of %zu bytes exceeds the %zu "
                             "byte cap",
                             len.value(), limits_.maxBodyBytes)));
            }
            bodyExpected_ = len.value();
            sawContentLength_ = true;
        } else if (name == "transfer-encoding") {
            return poison(501,
                          Status::invalidArgument(
                              "chunked transfer encoding is not "
                              "supported"));
        } else if (name == "connection") {
            std::string v = toLower(value);
            if (v == "close")
                cur_.keepAlive = false;
            else if (v == "keep-alive")
                cur_.keepAlive = true;
        }
    }
    return Status::ok();
}

HttpRequest
HttpRequestParser::takeRequest()
{
    HttpRequest r = std::move(ready_.front());
    ready_.pop_front();
    return r;
}

// ---------------------------------------------------------------
// Responses
// ---------------------------------------------------------------

const char *
httpStatusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
      case 504: return "Gateway Timeout";
      case 505: return "HTTP Version Not Supported";
      default:  return "Unknown";
    }
}

std::string
renderResponse(const HttpResponse &resp)
{
    std::string out = strf("HTTP/1.1 %d %s\r\n", resp.status,
                           httpStatusText(resp.status));
    out += "Content-Type: " + resp.contentType + "\r\n";
    out += strf("Content-Length: %zu\r\n", resp.body.size());
    for (const auto &h : resp.extraHeaders)
        out += h + "\r\n";
    if (resp.close)
        out += "Connection: close\r\n";
    out += "\r\n";
    out += resp.body;
    return out;
}

int
httpStatusFor(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:                 return 200;
      case StatusCode::InvalidArgument:    return 400;
      case StatusCode::CorruptData:        return 400;
      case StatusCode::NotFound:           return 404;
      case StatusCode::FailedPrecondition: return 409;
      case StatusCode::Unavailable:        return 503;
      case StatusCode::IoError:            return 500;
    }
    return 500;
}

std::string
errorBody(const std::string &message)
{
    return "{\"error\":\"" + jsonEscape(message) + "\"}";
}

} // namespace tomur::serve
