/**
 * @file
 * Request handlers for the serving daemon, split from transport and
 * connection handling so the service logic is testable without
 * sockets and the server core is testable without models.
 *
 * A Service maps one parsed request onto a reply; the server core
 * wraps every call in a per-request deadline and a catch-all, so a
 * handler may throw (DeadlineExceeded included) without taking the
 * daemon down. ModelService implements the real endpoints over a
 * ModelRegistry snapshot: every request predicts against one
 * immutable model version end-to-end, no matter how many hot-swaps
 * land mid-request.
 */

#ifndef TOMUR_SERVE_SERVICE_HH
#define TOMUR_SERVE_SERVICE_HH

#include <string>
#include <vector>

#include "serve/http.hh"
#include "serve/registry.hh"
#include "tomur/contention.hh"
#include "traffic/profile.hh"

namespace tomur::serve {

struct ServerObservatory;

/** One handler outcome. */
struct ServiceReply
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
};

/** ServiceReply from a handler Status (error mapping + JSON body). */
ServiceReply replyFromStatus(const Status &st);

class Service
{
  public:
    virtual ~Service() = default;

    /**
     * Handle one request. Runs under the server's per-request
     * deadline; implementations doing heavy work should call
     * checkDeadline() at convenient boundaries. May throw — the
     * server maps DeadlineExceeded to 504 and anything else to 500.
     */
    virtual ServiceReply handle(const HttpRequest &req) = 0;

    /** The server entered drain; handlers may flip health answers
     *  (load balancers should stop routing here). Default: no-op. */
    virtual void onDrain() {}
};

/**
 * The real endpoints:
 *
 *   GET  /healthz   liveness + model version + degradation flag
 *   GET  /metrics   Prometheus-style tomur_* registry dump
 *   GET  /report    rendered observability report (?html=1)
 *   POST /predict   {"flows":N,"size":B,"mtbr":M} -> prediction
 *   POST /diagnose  same body -> ranked contention attribution
 *   POST /reload    {"model":"PATH"} -> hot-swap the model
 *
 * Live introspection (GET-only, read-only, response bodies capped
 * the way requests are capped by ParserLimits):
 *
 *   GET /debug/vars     metrics snapshot as one JSON object
 *   GET /debug/trace    recent canonical trace spans (JSONL)
 *   GET /debug/slo      SLO burn events + budget summary (JSONL)
 *   GET /debug/access   recent access-log records (JSONL)
 *   GET /debug/profile  sampling-profiler text dump
 *
 * /debug/slo, /debug/access and /debug/profile need the observatory
 * attached (attachObservatory) and answer 503 without it; the trace
 * and access bodies are the same artifacts `tomur report` ingests,
 * so `curl /debug/slo > slo.jsonl` feeds straight into the report.
 *
 * Prediction happens against the registry snapshot and the reference
 * contention levels captured at construction — the hot path touches
 * no testbed, so a request costs microseconds, not an equilibrium
 * solve.
 */
class ModelService : public Service
{
  public:
    ModelService(ModelRegistry &registry,
                 std::vector<core::ContentionLevel> reference_levels,
                 std::string label);

    ServiceReply handle(const HttpRequest &req) override;

    /** Flip the health answer to "draining" (the server calls this
     *  via onDrain when drain begins). */
    void setDraining(bool draining) { draining_ = draining; }

    void onDrain() override { setDraining(true); }

    /** Read-only view for the /debug endpoints (the same bundle the
     *  Server writes; both run on the single-threaded core). */
    void attachObservatory(const ServerObservatory *observatory)
    {
        observatory_ = observatory;
    }

  private:
    ServiceReply handleHealthz() const;
    ServiceReply handleMetrics() const;
    ServiceReply handleReport(const HttpRequest &req) const;
    ServiceReply handlePredict(const HttpRequest &req) const;
    ServiceReply handleDiagnose(const HttpRequest &req) const;
    ServiceReply handleReload(const HttpRequest &req);
    ServiceReply handleDebug(const std::string &path) const;

    Result<traffic::TrafficProfile>
    profileFromBody(const std::string &body) const;

    ModelRegistry &registry_;
    std::vector<core::ContentionLevel> levels_;
    std::string label_;
    bool draining_ = false;
    const ServerObservatory *observatory_ = nullptr;
};

/**
 * Minimal flat-JSON field extraction for the request bodies above.
 * Deliberately not a general JSON parser: it finds `"key"` at the
 * top level and parses the scalar after the colon, with strict
 * syntax on what it does accept (no NaN/Inf, no trailing garbage in
 * the number). Bodies are already size-capped by the HTTP parser.
 */
Result<double> jsonNumberField(const std::string &body,
                               const std::string &key);
Result<std::string> jsonStringField(const std::string &body,
                                    const std::string &key);
/** True when the key appears at all (absent fields keep defaults). */
bool jsonHasField(const std::string &body, const std::string &key);

} // namespace tomur::serve

#endif // TOMUR_SERVE_SERVICE_HH
