/**
 * @file
 * Byte-stream transports for the serving daemon.
 *
 * The server core (serve/server.hh) never touches a file descriptor
 * directly: every connection is a Transport and every accept source
 * is a Listener. Three implementations exist:
 *
 *  - SocketTransport: a non-blocking TCP socket (the epoll path);
 *  - MemoryTransport: an in-process duplex byte pipe, driven from
 *    tests and the closed-loop load generator;
 *  - FaultInjectingTransport / FaultInjectingListener: seeded chaos
 *    wrappers around any of the above — short reads/writes, EAGAIN
 *    storms, mid-request disconnects, accept failures — so the whole
 *    connection state machine is chaos-testable deterministically.
 *
 * The I/O contract mirrors non-blocking POSIX semantics but without
 * errno spelunking: every read/write returns an IoResult that says
 * how many bytes moved and whether the stream would block, hit EOF,
 * or failed. Short reads and writes are *normal* (the parser and the
 * write-buffer flush loop are built around them); only `error` is
 * terminal for a connection.
 */

#ifndef TOMUR_SERVE_TRANSPORT_HH
#define TOMUR_SERVE_TRANSPORT_HH

#include <cstddef>
#include <deque>
#include <memory>
#include <string>

#include "common/rng.hh"
#include "common/status.hh"

namespace tomur::serve {

/** Outcome of one non-blocking read/write attempt. */
struct IoResult
{
    std::size_t n = 0;      ///< bytes actually moved
    bool wouldBlock = false; ///< nothing to do right now (EAGAIN)
    bool eof = false;        ///< peer closed its half of the stream
    Status error = Status::ok(); ///< terminal transport failure

    bool ok() const { return error.isOk(); }
};

/** A bidirectional byte stream (one accepted connection). */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Read up to `cap` bytes into `buf`. */
    virtual IoResult read(char *buf, std::size_t cap) = 0;

    /** Write up to `n` bytes from `buf`; short writes are normal. */
    virtual IoResult write(const char *buf, std::size_t n) = 0;

    /** Close the stream (idempotent). */
    virtual void close() = 0;

    /** True once close() has been called (either side). */
    virtual bool closed() const = 0;

    /** Underlying file descriptor, or -1 for in-process transports
     *  (the epoll loop needs it; the deterministic core does not). */
    virtual int fd() const { return -1; }
};

// ---------------------------------------------------------------
// In-process transport (tests, load generator)
// ---------------------------------------------------------------

/**
 * A duplex in-memory pipe. The server side uses the Transport
 * interface; the test/client side uses the client*() methods. No
 * internal locking: the deterministic server core and its driver run
 * on one thread by design.
 */
class MemoryTransport : public Transport
{
  public:
    // Server side.
    IoResult read(char *buf, std::size_t cap) override;
    IoResult write(const char *buf, std::size_t n) override;
    void close() override { closed_ = true; }
    bool closed() const override { return closed_; }

    // Client side.
    /** Queue bytes for the server to read. */
    void clientWrite(const std::string &bytes);
    /** Half-close: the server sees EOF after draining the buffer. */
    void clientShutdown() { clientDone_ = true; }
    /** Take everything the server has written so far. */
    std::string clientRead();
    /** Bytes the server has written and the client has not taken. */
    std::size_t clientPending() const { return toClient_.size(); }

    /** Cap on bytes handed to the server per read() call (0 = no
     *  cap). Lets tests force incremental parsing deterministically. */
    void setReadChunkCap(std::size_t cap) { readChunkCap_ = cap; }

  private:
    std::string toServer_;  ///< client -> server bytes
    std::string toClient_;  ///< server -> client bytes
    std::size_t readChunkCap_ = 0;
    bool clientDone_ = false;
    bool closed_ = false;
};

/**
 * Shared-ownership view over a transport. The server destroys the
 * Transport it holds when it reaps a connection; a test or load-
 * generator client that still needs its side of a MemoryTransport
 * hands the server one of these and keeps the shared_ptr.
 */
class SharedTransport : public Transport
{
  public:
    explicit SharedTransport(std::shared_ptr<Transport> inner)
        : inner_(std::move(inner))
    {
    }

    IoResult read(char *buf, std::size_t cap) override
    {
        return inner_->read(buf, cap);
    }
    IoResult write(const char *buf, std::size_t n) override
    {
        return inner_->write(buf, n);
    }
    void close() override { inner_->close(); }
    bool closed() const override { return inner_->closed(); }
    int fd() const override { return inner_->fd(); }

  private:
    std::shared_ptr<Transport> inner_;
};

// ---------------------------------------------------------------
// Real sockets (the epoll path)
// ---------------------------------------------------------------

/** A non-blocking socket. Takes ownership of the fd. */
class SocketTransport : public Transport
{
  public:
    explicit SocketTransport(int fd);
    ~SocketTransport() override;

    SocketTransport(const SocketTransport &) = delete;
    SocketTransport &operator=(const SocketTransport &) = delete;

    IoResult read(char *buf, std::size_t cap) override;
    IoResult write(const char *buf, std::size_t n) override;
    void close() override;
    bool closed() const override { return fd_ < 0; }
    int fd() const override { return fd_; }

  private:
    int fd_;
};

// ---------------------------------------------------------------
// Accept sources
// ---------------------------------------------------------------

/** One accept() outcome. Exactly one of transport / none / error
 *  is meaningful: a transport when a connection arrived, none=true
 *  when nothing is pending, an error Status otherwise. */
struct AcceptResult
{
    std::unique_ptr<Transport> transport;
    std::string clientId; ///< admission key (peer address or label)
    bool none = false;
    Status error = Status::ok();
};

/** Source of new connections. */
class Listener
{
  public:
    virtual ~Listener() = default;
    virtual AcceptResult accept() = 0;
};

/** In-process listener: tests push pre-built transports. */
class MemoryListener : public Listener
{
  public:
    AcceptResult accept() override;

    /** Queue a connection for the next accept(). */
    void enqueue(std::unique_ptr<Transport> t, std::string client_id);
    /** Queue a one-shot accept failure ahead of pending entries. */
    void enqueueFailure(Status error);

    std::size_t pending() const { return queue_.size(); }

  private:
    struct Entry
    {
        std::unique_ptr<Transport> transport;
        std::string clientId;
        Status error = Status::ok();
    };
    std::deque<Entry> queue_;
};

// ---------------------------------------------------------------
// Chaos wrappers
// ---------------------------------------------------------------

/** Per-operation fault probabilities for the chaos transport. All
 *  rates are in [0, 1] and drawn from one seeded stream, so a given
 *  (seed, operation sequence) replays the identical fault pattern. */
struct TransportFaults
{
    double shortReadRate = 0.0;  ///< cap a read at 1 byte
    double shortWriteRate = 0.0; ///< cap a write at 1 byte
    double eagainRate = 0.0;     ///< spurious wouldBlock
    double disconnectRate = 0.0; ///< peer vanishes mid-stream
    std::uint64_t seed = 1;
};

/**
 * Wraps any Transport with seeded fault injection. Short reads and
 * writes shrink the request *before* touching the inner stream, so
 * no bytes are ever lost or duplicated — they only arrive one at a
 * time, exercising every incremental-parse boundary. Disconnects
 * close the inner transport mid-stream: the torn-request case.
 */
class FaultInjectingTransport : public Transport
{
  public:
    FaultInjectingTransport(std::unique_ptr<Transport> inner,
                            TransportFaults faults);

    IoResult read(char *buf, std::size_t cap) override;
    IoResult write(const char *buf, std::size_t n) override;
    void close() override { inner_->close(); }
    bool closed() const override { return inner_->closed(); }
    int fd() const override { return inner_->fd(); }

    /** Faults injected so far (tests assert the chaos was real). */
    std::size_t faultsInjected() const { return injected_; }

  private:
    bool roll(double rate);

    std::unique_ptr<Transport> inner_;
    TransportFaults faults_;
    Rng rng_;
    std::size_t injected_ = 0;
};

/** Wraps a Listener so accept() fails with probability
 *  `failureRate` (seeded; the failed accept consumes no entry). */
class FaultInjectingListener : public Listener
{
  public:
    FaultInjectingListener(Listener &inner, double failure_rate,
                           std::uint64_t seed);

    AcceptResult accept() override;

    std::size_t failuresInjected() const { return injected_; }

  private:
    Listener &inner_;
    double failureRate_;
    Rng rng_;
    std::size_t injected_ = 0;
};

} // namespace tomur::serve

#endif // TOMUR_SERVE_TRANSPORT_HH
