/**
 * @file
 * The production front end: a real TCP listener plus an epoll event
 * loop driving the deterministic Server core (serve/server.hh).
 *
 * Division of labour: this file owns file descriptors, readiness,
 * signals, and wall-clock pacing (token-bucket refill, the drain
 * deadline); every protocol/robustness decision — parsing, shedding,
 * deadlines, drain bookkeeping — lives in the core, where the chaos
 * suite exercises it without sockets. The loop is level-triggered
 * with a short wait timeout: the core's step() is a bounded
 * poll-everything round, so readiness only decides *when* to step,
 * never *what* is stepped, which keeps the epoll path a thin shell.
 *
 * Shutdown: SIGTERM/SIGINT set a process-wide flag (async-signal-safe
 * store only); the loop begins a graceful drain — stop accepting,
 * answer new requests 503, finish admitted work — and exits cleanly
 * when the core reports drained() or the drain deadline trips
 * (whereupon leftovers are aborted and counted, not leaked).
 */

#ifndef TOMUR_SERVE_EPOLL_SERVER_HH
#define TOMUR_SERVE_EPOLL_SERVER_HH

#include <cstdint>
#include <string>

#include "common/status.hh"
#include "serve/server.hh"

namespace tomur::serve {

/** Epoll front-end tuning. */
struct EpollOptions
{
    std::string bindAddress = "127.0.0.1";
    int port = 0; ///< 0 = ephemeral; boundPort() reports the choice
    int backlog = 128;
    int waitTimeoutMs = 10; ///< epoll_wait tick (drives refill too)
    /** Drain budget once a shutdown signal arrives (0 = forever). */
    double drainDeadlineMs = 5000.0;
    /** Token-bucket refill per second per client (paired with
     *  ServeOptions::bucketCapacity). */
    double bucketRefillPerSec = 0.0;
};

/** Install the process-wide SIGTERM/SIGINT -> shutdown-flag
 *  handlers (idempotent). Also used by the CLI autopilot command. */
void installShutdownHandlers();

/** The shutdown flag (set by the signal handlers, or by tests). */
bool shutdownRequested();
void requestShutdown();   ///< programmatic trigger (tests)
void clearShutdownFlag(); ///< reset between runs (tests)

class EpollServer
{
  public:
    /** Binds and listens immediately (Status reports bind errors). */
    EpollServer(Server &core, EpollOptions opts);
    ~EpollServer();

    EpollServer(const EpollServer &) = delete;
    EpollServer &operator=(const EpollServer &) = delete;

    /** Listener health after construction. */
    const Status &status() const { return status_; }

    /** The port actually bound (after ephemeral resolution). */
    int boundPort() const { return boundPort_; }

    /**
     * Serve until a shutdown signal arrives, then drain. Returns
     * ok() on a clean drain; an error Status if the drain deadline
     * tripped and connections had to be aborted (still a controlled
     * exit — the daemon maps it to a nonzero exit code).
     */
    Status run();

    /** One loop iteration (exposed for tests). */
    void iterate();

  private:
    class TcpListener;

    Server &core_;
    EpollOptions opts_;
    Status status_ = Status::ok();
    int epollFd_ = -1;
    int listenFd_ = -1;
    int boundPort_ = 0;
    std::uint64_t lastTickNs_ = 0;
    std::unique_ptr<Listener> listener_;
};

} // namespace tomur::serve

#endif // TOMUR_SERVE_EPOLL_SERVER_HH
