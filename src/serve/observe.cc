#include "serve/observe.hh"

#include <chrono>
#include <ostream>
#include <sstream>

#include "common/strutil.hh"
#include "common/telemetry.hh"

namespace tomur::serve {

AccessLog::AccessLog(AccessLogOptions opts)
    : opts_(opts)
{
    if (opts_.capacity == 0)
        opts_.capacity = 1;
    ring_.resize(opts_.capacity);
}

void
AccessLog::record(AccessRecord rec)
{
    if (filled_ == opts_.capacity)
        ++dropped_;
    else
        ++filled_;
    ring_[head_] = std::move(rec);
    head_ = (head_ + 1) % opts_.capacity;
    ++recorded_;
}

std::size_t
AccessLog::size() const
{
    return filled_;
}

std::vector<AccessRecord>
AccessLog::snapshot() const
{
    std::vector<AccessRecord> out;
    out.reserve(filled_);
    std::size_t start =
        (head_ + opts_.capacity - filled_) % opts_.capacity;
    for (std::size_t i = 0; i < filled_; ++i)
        out.push_back(ring_[(start + i) % opts_.capacity]);
    return out;
}

std::string
AccessLog::formatRecord(const AccessRecord &rec, bool canonical)
{
    std::string line = strf(
        "{\"id\":\"%s\",\"peer\":\"%s\",\"method\":\"%s\","
        "\"path\":\"%s\",\"status\":%d,\"bytes\":%zu,"
        "\"step\":%llu,\"wait_steps\":%llu",
        jsonEscape(rec.id).c_str(), jsonEscape(rec.peer).c_str(),
        jsonEscape(rec.method).c_str(),
        jsonEscape(rec.path).c_str(), rec.status, rec.bodyBytes,
        (unsigned long long)rec.step,
        (unsigned long long)rec.waitSteps);
    if (!canonical) {
        line += strf(",\"queue_wait_ms\":%.3f,\"handle_ms\":%.3f",
                     rec.queueWaitMs, rec.handleMs);
    }
    line += strf(",\"verdict\":\"%s\",\"deadline_miss\":%s}",
                 jsonEscape(rec.verdict).c_str(),
                 rec.deadlineMiss ? "true" : "false");
    return line;
}

void
AccessLog::exportJsonl(std::ostream &out, bool canonical,
                       std::size_t maxLines) const
{
    auto records = snapshot();
    std::size_t start = 0;
    if (maxLines > 0 && records.size() > maxLines)
        start = records.size() - maxLines;
    for (std::size_t i = start; i < records.size(); ++i)
        out << formatRecord(records[i], canonical) << "\n";
}

std::string
AccessLog::exportString(bool canonical, std::size_t maxLines) const
{
    std::ostringstream ss;
    exportJsonl(ss, canonical, maxLines);
    return ss.str();
}

std::vector<SloObjective>
defaultServeObjectives()
{
    SloObjective availability;
    availability.name = "availability";
    availability.kind = SloKind::Availability;
    availability.target = 0.999;
    availability.fastWindow = 64;
    availability.slowWindow = 512;
    availability.burnThreshold = 2.0;

    SloObjective predict;
    predict.name = "predict_latency";
    predict.kind = SloKind::Latency;
    predict.pathFilter = "/predict";
    predict.latencyThresholdMs = 50.0;
    predict.target = 0.99;
    predict.fastWindow = 64;
    predict.slowWindow = 512;
    predict.burnThreshold = 2.0;

    return {availability, predict};
}

ServerObservatory::ServerObservatory()
    : ServerObservatory(defaultServeObjectives())
{
}

ServerObservatory::ServerObservatory(
    std::vector<SloObjective> objectives, AccessLogOptions log_opts)
    : accessLog(log_opts), slo(std::move(objectives))
{
    // Eager registration: the log-pressure counters show up (at
    // zero) in every dump, like the server families.
    metrics().counter("tomur_server_access_records_total");
    metrics().counter("tomur_server_access_dropped_total");
}

double
profilerScopeCostNs()
{
    // Min-of-batches over the *unsampled* path: a huge meanPeriod
    // makes nearly every token take the two-bump-and-a-decrement
    // fast path, which is what the serve loop pays per phase.
    SamplerOptions opts;
    opts.ringCapacity = 16;
    opts.meanPeriod = 1 << 20;
    SamplingProfiler probe(opts);
    int site = probe.registerSite("calibrate");
    constexpr int kBatch = 4096;
    double bestNs = 1e9;
    for (int round = 0; round < 4; ++round) {
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kBatch; ++i)
            SamplingProfiler::Scope scope(&probe, site);
        auto t1 = std::chrono::steady_clock::now();
        double perToken =
            std::chrono::duration<double, std::nano>(t1 - t0)
                .count() /
            kBatch;
        if (perToken < bestNs)
            bestNs = perToken;
    }
    return bestNs;
}

} // namespace tomur::serve
