#include "serve/transport.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "common/strutil.hh"

namespace tomur::serve {

// ---------------------------------------------------------------
// MemoryTransport
// ---------------------------------------------------------------

IoResult
MemoryTransport::read(char *buf, std::size_t cap)
{
    IoResult r;
    if (closed_) {
        r.error = Status::failedPrecondition(
            "read on a closed memory transport");
        return r;
    }
    if (toServer_.empty()) {
        if (clientDone_)
            r.eof = true;
        else
            r.wouldBlock = true;
        return r;
    }
    std::size_t n = std::min(cap, toServer_.size());
    if (readChunkCap_ > 0)
        n = std::min(n, readChunkCap_);
    std::memcpy(buf, toServer_.data(), n);
    toServer_.erase(0, n);
    r.n = n;
    return r;
}

IoResult
MemoryTransport::write(const char *buf, std::size_t n)
{
    IoResult r;
    if (closed_) {
        r.error = Status::failedPrecondition(
            "write on a closed memory transport");
        return r;
    }
    toClient_.append(buf, n);
    r.n = n;
    return r;
}

void
MemoryTransport::clientWrite(const std::string &bytes)
{
    toServer_ += bytes;
}

std::string
MemoryTransport::clientRead()
{
    std::string out;
    out.swap(toClient_);
    return out;
}

// ---------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------

SocketTransport::SocketTransport(int fd)
    : fd_(fd)
{
}

SocketTransport::~SocketTransport()
{
    close();
}

IoResult
SocketTransport::read(char *buf, std::size_t cap)
{
    IoResult r;
    if (fd_ < 0) {
        r.error = Status::failedPrecondition(
            "read on a closed socket");
        return r;
    }
    ssize_t n = ::read(fd_, buf, cap);
    if (n > 0) {
        r.n = static_cast<std::size_t>(n);
    } else if (n == 0) {
        r.eof = true;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK ||
               errno == EINTR) {
        r.wouldBlock = true;
    } else {
        r.error = Status::ioError(
            strf("socket read: %s", std::strerror(errno)));
    }
    return r;
}

IoResult
SocketTransport::write(const char *buf, std::size_t n)
{
    IoResult r;
    if (fd_ < 0) {
        r.error = Status::failedPrecondition(
            "write on a closed socket");
        return r;
    }
    ssize_t w = ::write(fd_, buf, n);
    if (w >= 0) {
        r.n = static_cast<std::size_t>(w);
    } else if (errno == EAGAIN || errno == EWOULDBLOCK ||
               errno == EINTR) {
        r.wouldBlock = true;
    } else if (errno == EPIPE || errno == ECONNRESET) {
        r.eof = true;
    } else {
        r.error = Status::ioError(
            strf("socket write: %s", std::strerror(errno)));
    }
    return r;
}

void
SocketTransport::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// ---------------------------------------------------------------
// MemoryListener
// ---------------------------------------------------------------

AcceptResult
MemoryListener::accept()
{
    AcceptResult r;
    if (queue_.empty()) {
        r.none = true;
        return r;
    }
    Entry e = std::move(queue_.front());
    queue_.pop_front();
    if (!e.error.isOk()) {
        r.error = std::move(e.error);
        return r;
    }
    r.transport = std::move(e.transport);
    r.clientId = std::move(e.clientId);
    return r;
}

void
MemoryListener::enqueue(std::unique_ptr<Transport> t,
                        std::string client_id)
{
    Entry e;
    e.transport = std::move(t);
    e.clientId = std::move(client_id);
    queue_.push_back(std::move(e));
}

void
MemoryListener::enqueueFailure(Status error)
{
    Entry e;
    e.error = std::move(error);
    queue_.push_back(std::move(e));
}

// ---------------------------------------------------------------
// FaultInjectingTransport
// ---------------------------------------------------------------

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner, TransportFaults faults)
    : inner_(std::move(inner)), faults_(faults), rng_(faults.seed)
{
}

bool
FaultInjectingTransport::roll(double rate)
{
    if (rate <= 0.0)
        return false;
    if (!rng_.chance(rate))
        return false;
    ++injected_;
    return true;
}

IoResult
FaultInjectingTransport::read(char *buf, std::size_t cap)
{
    if (roll(faults_.disconnectRate)) {
        // Torn request: the peer vanishes; whatever bytes were in
        // flight are gone for good.
        inner_->close();
        IoResult r;
        r.eof = true;
        return r;
    }
    if (roll(faults_.eagainRate)) {
        IoResult r;
        r.wouldBlock = true;
        return r;
    }
    // Shrink the request, never the result: every byte the inner
    // stream produced is delivered, just one at a time.
    if (cap > 1 && roll(faults_.shortReadRate))
        cap = 1;
    return inner_->read(buf, cap);
}

IoResult
FaultInjectingTransport::write(const char *buf, std::size_t n)
{
    if (roll(faults_.disconnectRate)) {
        inner_->close();
        IoResult r;
        r.eof = true;
        return r;
    }
    if (roll(faults_.eagainRate)) {
        IoResult r;
        r.wouldBlock = true;
        return r;
    }
    if (n > 1 && roll(faults_.shortWriteRate))
        n = 1;
    return inner_->write(buf, n);
}

// ---------------------------------------------------------------
// FaultInjectingListener
// ---------------------------------------------------------------

FaultInjectingListener::FaultInjectingListener(Listener &inner,
                                               double failure_rate,
                                               std::uint64_t seed)
    : inner_(inner), failureRate_(failure_rate), rng_(seed)
{
}

AcceptResult
FaultInjectingListener::accept()
{
    if (failureRate_ > 0.0 && rng_.chance(failureRate_)) {
        ++injected_;
        AcceptResult r;
        r.error = Status::unavailable("injected accept failure");
        return r;
    }
    return inner_.accept();
}

} // namespace tomur::serve
