/**
 * @file
 * The serving observatory: the per-request observability state the
 * server core writes and the /debug endpoints read.
 *
 * AccessLog is a bounded ring of per-request outcome records — one
 * line per answered (or refused, or dropped) request, JSONL on the
 * way out. Two export modes mirror the tracer's:
 *
 *  - full: every field, wall-clock latencies included — the
 *    operator-facing `--access-log` file and /debug/access body;
 *  - canonical: wall-clock fields omitted, logical step indices
 *    kept, so a deterministic scenario exports byte-identically at
 *    any TOMUR_THREADS (the serve-observatory golden diffs this).
 *
 * ServerObservatory bundles the access log, the SLO tracker, and an
 * optional sampling profiler behind one pointer: the Server core
 * takes it via setObservatory() and feeds it; ModelService takes
 * the same pointer and serves it read-only under /debug. Both run
 * on the single-threaded core, so the bundle needs no locking —
 * same ownership rule as SamplingProfiler.
 */

#ifndef TOMUR_SERVE_OBSERVE_HH
#define TOMUR_SERVE_OBSERVE_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/sampler.hh"
#include "common/slo.hh"

namespace tomur::serve {

/** One request outcome, as the access log remembers it. */
struct AccessRecord
{
    /** Correlation id: "c<conn>-r<seq>" for parsed requests,
     *  "c<conn>-parse" for parser poison (no request to number). */
    std::string id;
    std::string peer;   ///< client id ("anon" for plain sockets)
    std::string method; ///< empty for parse errors
    std::string path;   ///< empty for parse errors
    int status = 0;     ///< 0 = dropped before an answer existed
    std::size_t bodyBytes = 0; ///< response body size
    /** Logical server step indices (deterministic). */
    std::uint64_t step = 0;      ///< step the outcome landed in
    std::uint64_t waitSteps = 0; ///< steps spent queued (0 = inline)
    /** Wall-clock measurements (omitted from canonical export). */
    double queueWaitMs = 0.0;
    double handleMs = 0.0;
    /** ok|shed|throttled|deadline|error|parse|dropped. */
    std::string verdict = "ok";
    bool deadlineMiss = false;
};

/** Access-log tuning. */
struct AccessLogOptions
{
    /** Records retained; a full ring overwrites its oldest entry
     *  (and counts the eviction), like the sampling profiler. */
    std::size_t capacity = 4096;
};

class AccessLog
{
  public:
    explicit AccessLog(AccessLogOptions opts = {});

    void record(AccessRecord rec);

    /** Records currently retained (<= capacity). */
    std::size_t size() const;
    /** Records ever recorded. */
    std::uint64_t recorded() const { return recorded_; }
    /** Records evicted by ring wrap-around. */
    std::uint64_t dropped() const { return dropped_; }

    /** Retained records, oldest first. */
    std::vector<AccessRecord> snapshot() const;

    /** One JSON object per line, oldest first. canonical omits the
     *  wall-clock fields (see file header). `maxLines` keeps only
     *  the newest N lines (0 = all retained). */
    void exportJsonl(std::ostream &out, bool canonical = false,
                     std::size_t maxLines = 0) const;
    std::string exportString(bool canonical = false,
                             std::size_t maxLines = 0) const;

    /** One record rendered as its JSONL line (shared by export and
     *  the CLI's line-at-a-time --access-log writer). */
    static std::string formatRecord(const AccessRecord &rec,
                                    bool canonical);

  private:
    AccessLogOptions opts_;
    std::vector<AccessRecord> ring_; ///< capacity fixed up front
    std::size_t head_ = 0;           ///< next slot to overwrite
    std::size_t filled_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
};

/**
 * Everything the server core feeds and /debug serves. The profiler
 * pointer is optional (null = phase profiling off); the caller owns
 * it, same as Server::setListener.
 */
struct ServerObservatory
{
    AccessLog accessLog;
    SloTracker slo;
    SamplingProfiler *profiler = nullptr;
    /** Streaming tap: called with every record as it lands, before
     *  ring eviction can touch it — the CLI's --access-log file
     *  writer. The ring stays the bounded /debug view. */
    std::function<void(const AccessRecord &)> accessSink;

    /** Objectives default to defaultServeObjectives(). */
    ServerObservatory();
    ServerObservatory(std::vector<SloObjective> objectives,
                      AccessLogOptions log_opts = {});
};

/**
 * The daemon's stock objectives: availability >= 99.9% over all
 * endpoints, and /predict answered within 50 ms at p99 (burn math
 * over windows of requests; see common/slo.hh).
 */
std::vector<SloObjective> defaultServeObjectives();

/**
 * Measure the per-token cost of an unsampled profiler scope on this
 * machine (min over a few timed batches, like the replay-bench
 * overhead stage). The server core multiplies this by the token
 * count to maintain tomur_server_profiler_overhead_frac.
 */
double profilerScopeCostNs();

} // namespace tomur::serve

#endif // TOMUR_SERVE_OBSERVE_HH
