#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>

#include "common/deadline.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"

namespace tomur::serve {

namespace {

struct ServerMetrics
{
    Counter &accepted;
    Counter &acceptFailures;
    Counter &parseErrors;
    Counter &requests;
    Counter &handled;
    Counter &shed;
    Counter &throttled;
    Counter &deadlineMisses;
    Counter &internalErrors;
    Counter &dropped;
    Counter &accessRecords;
    Counter &accessDropped;
    Gauge &connections;
    Gauge &queueDepth;
    Gauge &profOverhead;
    Histogram &latencyMs;
};

ServerMetrics &
serverMetrics()
{
    static ServerMetrics m = {
        metrics().counter("tomur_server_accepted_total"),
        metrics().counter("tomur_server_accept_failures_total"),
        metrics().counter("tomur_server_parse_errors_total"),
        metrics().counter("tomur_server_requests_total"),
        metrics().counter("tomur_server_handled_total"),
        metrics().counter("tomur_server_shed_total"),
        metrics().counter("tomur_server_throttled_total"),
        metrics().counter("tomur_server_deadline_misses_total"),
        metrics().counter("tomur_server_internal_errors_total"),
        metrics().counter("tomur_server_dropped_requests_total"),
        metrics().counter("tomur_server_access_records_total"),
        metrics().counter("tomur_server_access_dropped_total"),
        metrics().gauge("tomur_server_connections"),
        metrics().gauge("tomur_server_queue_depth"),
        metrics().gauge("tomur_server_profiler_overhead_frac"),
        metrics().histogram(
            "tomur_server_request_ms",
            Histogram::exponentialBounds(0.01, 4.0, 10)),
    };
    return m;
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

Server::Server(ServeOptions opts, Service &service)
    : opts_(opts), service_(service)
{
    serverMetrics(); // eager registration: every dump shows the family
}

Server::~Server()
{
    for (auto &conn : conns_) {
        if (!conn->transport->closed())
            conn->transport->close();
    }
}

void
Server::setObservatory(ServerObservatory *observatory)
{
    observatory_ = observatory;
    registeredProfiler_ = nullptr;
    if (observatory_ != nullptr &&
        observatory_->profiler != nullptr) {
        SamplingProfiler *prof = observatory_->profiler;
        registeredProfiler_ = prof;
        siteAccept_ = prof->registerSite("serve.accept");
        siteRead_ = prof->registerSite("serve.read");
        siteHandle_ = prof->registerSite("serve.handle");
        siteFlush_ = prof->registerSite("serve.flush");
        // Instrumentation cost is estimated as measured-per-token
        // cost x token count over wall time since attach; the gauge
        // is refreshed every 256 steps.
        profPerTokenNs_ = profilerScopeCostNs();
        profAttachNs_ = nowNs();
        serverMetrics().profOverhead.set(0.0);
    }
}

void
Server::logAccess(AccessRecord rec)
{
    if (observatory_ == nullptr)
        return;
    if (observatory_->accessSink)
        observatory_->accessSink(rec);
    std::uint64_t dropped_before = observatory_->accessLog.dropped();
    observatory_->accessLog.record(std::move(rec));
    serverMetrics().accessRecords.inc();
    if (observatory_->accessLog.dropped() > dropped_before)
        serverMetrics().accessDropped.inc();
}

void
Server::ingestSlo(const std::string &path, int status,
                  double latency_ms, bool deadline_miss)
{
    if (observatory_ == nullptr)
        return;
    SloOutcome outcome;
    outcome.path = path;
    outcome.status = status;
    outcome.latencyMs = latency_ms;
    outcome.deadlineMiss = deadline_miss;
    for (const SloEvent &ev : observatory_->slo.ingest(outcome)) {
        // Mirror budget transitions into the trace ring so a burn
        // lines up with the requests around it.
        tracePoint("slo.event",
                   {{"event", ev.kind == SloEventKind::Burn
                                  ? "SLO_BURN"
                                  : "SLO_RECOVERED"},
                    {"objective", ev.objective},
                    {"fast_burn", traceFormat(ev.fastBurn)},
                    {"slow_burn", traceFormat(ev.slowBurn)}},
                   static_cast<std::int64_t>(ev.sample));
    }
}

void
Server::addConnection(std::unique_ptr<Transport> transport,
                      std::string client_id)
{
    auto conn = std::make_shared<Connection>(opts_.parser);
    conn->id = nextConnId_++;
    conn->transport = std::move(transport);
    conn->clientId = std::move(client_id);
    if (conns_.size() >= opts_.maxConnections || draining_) {
        // Immediate 503 + close: the one thing an over-capacity (or
        // draining) daemon owes a new connection is a fast answer.
        ++stats_.acceptShed;
        serverMetrics().shed.inc();
        HttpResponse resp;
        resp.status = 503;
        resp.close = true;
        resp.extraHeaders.push_back("Retry-After: 1");
        resp.body = errorBody(draining_ ? "draining"
                                        : "connection limit");
        std::string bytes = renderResponse(resp);
        (void)conn->transport->write(bytes.data(), bytes.size());
        conn->transport->close();
        return;
    }
    ++stats_.accepted;
    serverMetrics().accepted.inc();
    conns_.push_back(std::move(conn));
    serverMetrics().connections.set(
        static_cast<double>(conns_.size()));
    didWork_ = true;
}

void
Server::acceptPhase()
{
    if (listener_ == nullptr || draining_)
        return;
    for (std::size_t i = 0; i < opts_.maxAcceptsPerStep; ++i) {
        AcceptResult r = listener_->accept();
        if (r.none)
            break;
        if (!r.error.isOk()) {
            // A failed accept (EMFILE, injected chaos) must never
            // stop the daemon; count it and keep serving.
            ++stats_.acceptFailures;
            serverMetrics().acceptFailures.inc();
            warnEvent("server", "accept-failed",
                      {{"error", r.error.message()}});
            continue;
        }
        addConnection(std::move(r.transport),
                      r.clientId.empty() ? "anon"
                                         : std::move(r.clientId));
    }
}

bool
Server::admitBucket(const std::string &client_id)
{
    if (opts_.bucketCapacity <= 0.0)
        return true;
    auto [it, fresh] =
        buckets_.try_emplace(client_id, opts_.bucketCapacity);
    (void)fresh;
    if (it->second < 1.0)
        return false;
    it->second -= 1.0;
    return true;
}

void
Server::tickTokens(double tokens)
{
    for (auto &[id, level] : buckets_)
        level = std::min(opts_.bucketCapacity, level + tokens);
}

void
Server::respond(const std::shared_ptr<Connection> &conn,
                HttpResponse resp)
{
    if (resp.close)
        conn->closeAfterFlush = true;
    conn->writeBuf += renderResponse(resp);
    if (conn->writeBuf.size() - conn->writeOff >
        opts_.maxWriteBufferBytes) {
        // The peer is not reading; holding its responses hostage in
        // RAM is how servers die. Drop it.
        warnEvent("server", "write-buffer-overflow",
                  {{"client", conn->clientId}});
        killConnection(conn);
    }
}

void
Server::killConnection(const std::shared_ptr<Connection> &conn)
{
    if (conn->dead)
        return;
    conn->dead = true;
    conn->transport->close();
    ++stats_.connectionsClosed;
}

void
Server::admit(const std::shared_ptr<Connection> &conn)
{
    while (conn->parser.hasRequest()) {
        HttpRequest req = conn->parser.takeRequest();
        ++stats_.requestsAdmitted; // admission *attempts*
        serverMetrics().requests.inc();
        std::string rid = strf("c%llu-r%llu",
                               (unsigned long long)conn->id,
                               (unsigned long long)++conn->requestSeq);

        // Refusals are answered inline (never queued): respond,
        // log the outcome under the request's correlation id, and
        // charge the SLO budget — a shed request is exactly the
        // availability loss the burn rate must see.
        auto refuse = [&](HttpResponse resp, const char *verdict) {
            resp.extraHeaders.push_back("X-Request-Id: " + rid);
            AccessRecord rec;
            rec.id = rid;
            rec.peer = conn->clientId;
            rec.method = req.method;
            rec.path = req.path();
            rec.status = resp.status;
            rec.bodyBytes = resp.body.size();
            rec.step = stepIndex_;
            rec.verdict = verdict;
            respond(conn, std::move(resp));
            ingestSlo(rec.path, rec.status, 0.0, false);
            logAccess(std::move(rec));
        };

        if (draining_) {
            ++stats_.shed;
            serverMetrics().shed.inc();
            HttpResponse resp;
            resp.status = 503;
            resp.close = true;
            resp.extraHeaders.push_back("Retry-After: 1");
            resp.body = errorBody("draining");
            refuse(std::move(resp), "shed");
            continue;
        }
        if (!admitBucket(conn->clientId)) {
            ++stats_.throttled;
            serverMetrics().throttled.inc();
            HttpResponse resp;
            resp.status = 429;
            resp.close = !req.keepAlive;
            resp.extraHeaders.push_back("Retry-After: 1");
            resp.body = errorBody("client over admission budget");
            refuse(std::move(resp), "throttled");
            continue;
        }
        if (ready_.size() >= opts_.maxQueueDepth) {
            ++stats_.shed;
            serverMetrics().shed.inc();
            HttpResponse resp;
            resp.status = 503;
            resp.close = !req.keepAlive;
            resp.extraHeaders.push_back("Retry-After: 1");
            resp.body = errorBody("request queue is full");
            refuse(std::move(resp), "shed");
            continue;
        }
        Pending p;
        p.conn = conn;
        p.request = std::move(req);
        p.enqueuedNs = nowNs();
        p.rid = std::move(rid);
        p.admittedStep = stepIndex_;
        ready_.push_back(std::move(p));
        ++conn->inflight;
        didWork_ = true;
    }
    serverMetrics().queueDepth.set(
        static_cast<double>(ready_.size()));
}

void
Server::readPhase(const std::shared_ptr<Connection> &conn)
{
    if (conn->dead || conn->sawEof || conn->parser.failed())
        return;
    char buf[8192];
    std::size_t chunk =
        std::min(sizeof(buf), opts_.readChunkBytes);
    // The parse child span opens lazily on the first byte read, so
    // idle connections polled every step record nothing.
    std::optional<TraceSpan> parseSpan;
    std::uint64_t bytesRead = 0;
    for (std::size_t i = 0; i < opts_.maxReadsPerConnPerStep; ++i) {
        IoResult r = conn->transport->read(buf, chunk);
        if (!r.ok()) {
            killConnection(conn);
            return;
        }
        if (r.eof) {
            conn->sawEof = true;
            break;
        }
        if (r.wouldBlock)
            break;
        if (r.n == 0)
            break;
        didWork_ = true;
        if (!parseSpan) {
            parseSpan.emplace("server.parse");
            parseSpan->field("conn",
                             static_cast<std::uint64_t>(conn->id));
            parseSpan->field("peer", conn->clientId);
        }
        bytesRead += r.n;
        if (Status st = conn->parser.feed(buf, r.n); !st) {
            ++stats_.parseErrors;
            serverMetrics().parseErrors.inc();
            conn->parseErrorPending = true;
            conn->parseErrorResp.status =
                conn->parser.httpErrorStatus();
            conn->parseErrorResp.close = true;
            conn->parseErrorResp.body = errorBody(st.toString());
            parseSpan->field("error", st.toString());
            // Parser poison has no request to number; it still gets
            // an access line (and an SLO fold — a 4xx is not an
            // availability loss, but the stream stays complete).
            AccessRecord rec;
            rec.id = strf("c%llu-parse",
                          (unsigned long long)conn->id);
            rec.peer = conn->clientId;
            rec.status = conn->parseErrorResp.status;
            rec.bodyBytes = conn->parseErrorResp.body.size();
            rec.step = stepIndex_;
            rec.verdict = "parse";
            ingestSlo("", rec.status, 0.0, false);
            logAccess(std::move(rec));
            break;
        }
    }
    if (parseSpan)
        parseSpan->field("bytes", bytesRead);
    parseSpan.reset();
    admit(conn);
    // A peer that half-closed mid-request will never complete it;
    // drop the carcass once every admitted request is answered.
    if (conn->sawEof && conn->inflight == 0 &&
        !conn->parseErrorPending &&
        conn->writeBuf.size() == conn->writeOff) {
        killConnection(conn);
    }
}

ServiceReply
Server::invokeService(const HttpRequest &req)
{
    if (opts_.requestDeadlineGranules > 0) {
        Deadline dl =
            Deadline::afterGranules(opts_.requestDeadlineGranules);
        ScopedDeadline scope(dl);
        return service_.handle(req);
    }
    if (opts_.requestDeadlineMs > 0.0) {
        Deadline dl = Deadline::afterMillis(opts_.requestDeadlineMs);
        ScopedDeadline scope(dl);
        return service_.handle(req);
    }
    return service_.handle(req);
}

void
Server::handlePhase()
{
    std::size_t budget = opts_.maxRequestsPerStep;
    while (budget-- > 0 && !ready_.empty()) {
        Pending p = std::move(ready_.front());
        ready_.pop_front();
        didWork_ = true;
        if (p.conn->dead) {
            // The client hung up after admission; the work is moot.
            ++stats_.droppedRequests;
            serverMetrics().dropped.inc();
            AccessRecord rec;
            rec.id = p.rid;
            rec.peer = p.conn->clientId;
            rec.method = p.request.method;
            rec.path = p.request.path();
            rec.status = 0;
            rec.step = stepIndex_;
            rec.waitSteps = stepIndex_ - p.admittedStep;
            rec.queueWaitMs =
                static_cast<double>(nowNs() - p.enqueuedNs) / 1e6;
            rec.verdict = "dropped";
            logAccess(std::move(rec));
            continue;
        }
        --p.conn->inflight;

        std::uint64_t handleStartNs = nowNs();
        TraceSpan span("server.request");
        std::string path;
        {
            TraceSpan route("server.route");
            path = p.request.path();
            route.field("path", path);
        }
        if (span.active()) {
            span.field("id", p.rid);
            span.field("peer", p.conn->clientId);
            span.field("method", p.request.method);
            span.field("path", path);
        }

        HttpResponse resp;
        resp.close = !p.request.keepAlive;
        const char *verdict = "ok";
        bool deadlineMiss = false;
        try {
            TraceSpan handleSpan("server.handle");
            ServiceReply reply = invokeService(p.request);
            resp.status = reply.status;
            resp.contentType = reply.contentType;
            resp.body = std::move(reply.body);
            ++stats_.requestsHandled;
            serverMetrics().handled.inc();
        } catch (const DeadlineExceeded &e) {
            resp.status = 504;
            resp.body = errorBody(e.what());
            ++stats_.deadlineMisses;
            serverMetrics().deadlineMisses.inc();
            verdict = "deadline";
            deadlineMiss = true;
        } catch (const std::exception &e) {
            resp.status = 500;
            resp.body = errorBody("internal error");
            ++stats_.internalErrors;
            serverMetrics().internalErrors.inc();
            verdict = "error";
            warnEvent("server", "handler-exception",
                      {{"target", p.request.target},
                       {"what", e.what()}});
        }
        span.field("status",
                   static_cast<std::int64_t>(resp.status));
        std::uint64_t doneNs = nowNs();
        double latencyMs =
            static_cast<double>(doneNs - p.enqueuedNs) / 1e6;
        serverMetrics().latencyMs.observe(latencyMs);

        AccessRecord rec;
        rec.id = p.rid;
        rec.peer = p.conn->clientId;
        rec.method = p.request.method;
        rec.path = path;
        rec.status = resp.status;
        rec.bodyBytes = resp.body.size();
        rec.step = stepIndex_;
        rec.waitSteps = stepIndex_ - p.admittedStep;
        rec.queueWaitMs =
            static_cast<double>(handleStartNs - p.enqueuedNs) / 1e6;
        rec.handleMs =
            static_cast<double>(doneNs - handleStartNs) / 1e6;
        rec.verdict = verdict;
        rec.deadlineMiss = deadlineMiss;
        {
            TraceSpan writeSpan("server.write");
            writeSpan.field(
                "bytes",
                static_cast<std::uint64_t>(resp.body.size()));
            resp.extraHeaders.push_back("X-Request-Id: " + p.rid);
            respond(p.conn, std::move(resp));
        }
        ingestSlo(path, rec.status, latencyMs, deadlineMiss);
        logAccess(std::move(rec));
    }
    serverMetrics().queueDepth.set(
        static_cast<double>(ready_.size()));
}

void
Server::flushPhase(const std::shared_ptr<Connection> &conn)
{
    if (conn->dead)
        return;
    if (conn->parseErrorPending && conn->inflight == 0) {
        conn->parseErrorPending = false;
        respond(conn, std::move(conn->parseErrorResp));
        if (conn->dead)
            return;
    }
    while (conn->writeOff < conn->writeBuf.size()) {
        IoResult r = conn->transport->write(
            conn->writeBuf.data() + conn->writeOff,
            conn->writeBuf.size() - conn->writeOff);
        if (!r.ok() || r.eof) {
            killConnection(conn);
            return;
        }
        if (r.wouldBlock || r.n == 0)
            break;
        conn->writeOff += r.n;
        didWork_ = true;
    }
    if (conn->writeOff == conn->writeBuf.size()) {
        conn->writeBuf.clear();
        conn->writeOff = 0;
        if (conn->closeAfterFlush ||
            (conn->sawEof && conn->inflight == 0)) {
            killConnection(conn);
        }
    }
}

bool
Server::step()
{
    // Only sample with the profiler whose sites we registered: a
    // profiler swapped into the bundle mid-flight would be indexed
    // with stale site ids (see registeredProfiler_).
    SamplingProfiler *prof =
        observatory_ != nullptr &&
                observatory_->profiler == registeredProfiler_
            ? registeredProfiler_
            : nullptr;
    ++stepIndex_;
    didWork_ = false;
    {
        SamplingProfiler::Scope scope(prof, siteAccept_);
        acceptPhase();
    }
    {
        // Iterate over a snapshot: phases may mark connections dead
        // but never add while iterating.
        SamplingProfiler::Scope scope(prof, siteRead_);
        for (std::size_t i = 0; i < conns_.size(); ++i)
            readPhase(conns_[i]);
    }
    {
        SamplingProfiler::Scope scope(prof, siteHandle_);
        handlePhase();
    }
    {
        SamplingProfiler::Scope scope(prof, siteFlush_);
        for (std::size_t i = 0; i < conns_.size(); ++i)
            flushPhase(conns_[i]);
    }
    std::size_t before = conns_.size();
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const auto &c) {
                                    return c->dead;
                                }),
                 conns_.end());
    if (conns_.size() != before) {
        didWork_ = true;
        serverMetrics().connections.set(
            static_cast<double>(conns_.size()));
    }
    if (prof != nullptr && (stepIndex_ & 255) == 0) {
        std::uint64_t now = nowNs();
        if (now > profAttachNs_) {
            serverMetrics().profOverhead.set(
                profPerTokenNs_ *
                static_cast<double>(prof->tokens()) /
                static_cast<double>(now - profAttachNs_));
        }
    }
    return didWork_;
}

void
Server::beginDrain()
{
    if (draining_)
        return;
    draining_ = true;
    service_.onDrain();
    TraceSpan span("server.drain-begin");
    inform("server: drain started");
}

bool
Server::drained() const
{
    if (!draining_)
        return false;
    if (!ready_.empty())
        return false;
    for (const auto &conn : conns_) {
        if (conn->dead)
            continue;
        if (conn->inflight > 0 || conn->parseErrorPending ||
            conn->writeOff < conn->writeBuf.size())
            return false;
    }
    return true;
}

void
Server::abortConnections()
{
    for (auto &conn : conns_) {
        if (!conn->dead) {
            std::size_t pending = conn->inflight;
            stats_.droppedRequests += pending;
            killConnection(conn);
        }
    }
    for (const Pending &p : ready_) {
        AccessRecord rec;
        rec.id = p.rid;
        rec.peer = p.conn->clientId;
        rec.method = p.request.method;
        rec.path = p.request.path();
        rec.status = 0;
        rec.step = stepIndex_;
        rec.waitSteps = stepIndex_ - p.admittedStep;
        rec.verdict = "dropped";
        logAccess(std::move(rec));
    }
    ready_.clear();
    conns_.clear();
    serverMetrics().connections.set(0.0);
}

std::size_t
Server::openConnections() const
{
    std::size_t n = 0;
    for (const auto &conn : conns_) {
        if (!conn->dead)
            ++n;
    }
    return n;
}

} // namespace tomur::serve
