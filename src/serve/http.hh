/**
 * @file
 * Hardened incremental HTTP/1.1 request parsing + response rendering
 * for the serving daemon.
 *
 * Threat model: the bytes come from an untrusted, possibly hostile or
 * half-broken client over a transport that tears requests mid-byte.
 * Accordingly:
 *
 *  - the parser is incremental — feed() accepts any split of the
 *    stream, one byte at a time if the transport insists, and never
 *    over-reads past the current request;
 *  - every dimension a client controls is capped (request-line bytes,
 *    header bytes and count, body bytes) and the caps are checked
 *    *before* bytes are buffered, so a hostile Content-Length or an
 *    endless header can never drive allocation;
 *  - malformed input poisons the parser with a Status (and an HTTP
 *    status to answer with) — it never throws, crashes, or silently
 *    resynchronizes on garbage;
 *  - pipelined requests are supported: completed requests queue up
 *    and leftover bytes seed the next parse.
 *
 * Only the subset the daemon needs is implemented: GET/POST,
 * Content-Length bodies (no chunked encoding), Connection handling.
 * Everything else is rejected deterministically, which for a
 * robustness-first server is a feature.
 */

#ifndef TOMUR_SERVE_HTTP_HH
#define TOMUR_SERVE_HTTP_HH

#include <cstddef>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hh"

namespace tomur::serve {

/** One parsed request. */
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ...
    std::string target;  ///< path + optional query ("/predict")
    std::string body;    ///< exactly Content-Length bytes
    bool keepAlive = true;
    /** Lower-cased name -> value, in arrival order. */
    std::vector<std::pair<std::string, std::string>> headers;

    /** Header value by lower-case name ("" when absent). */
    std::string header(const std::string &name) const;
    /** Path without the query string. */
    std::string path() const;
    /** Query parameter value by name ("" when absent). */
    std::string queryParam(const std::string &name) const;
};

/** Client-controlled dimensions and their caps. */
struct ParserLimits
{
    std::size_t maxRequestLineBytes = 4096;
    std::size_t maxHeaderBytes = 8192; ///< all header lines together
    std::size_t maxHeaders = 64;
    std::size_t maxBodyBytes = 1 << 20;
};

/**
 * Incremental request parser. feed() consumes any prefix of the
 * stream; completed requests are popped with takeRequest(). A
 * malformed stream poisons the parser permanently — the connection
 * must answer with httpErrorStatus() and close.
 */
class HttpRequestParser
{
  public:
    explicit HttpRequestParser(ParserLimits limits = {});

    /**
     * Consume `n` bytes. Returns ok() while the stream is healthy
     * (complete requests may now be pending); returns the poisoning
     * error otherwise. Feeding a poisoned parser keeps returning the
     * same error and buffers nothing.
     */
    Status feed(const char *data, std::size_t n);

    /** A complete request is ready to take. */
    bool hasRequest() const { return !ready_.empty(); }

    /** Pop the oldest completed request (call only when
     *  hasRequest()). */
    HttpRequest takeRequest();

    /** True once the stream is poisoned. */
    bool failed() const { return !error_.isOk(); }
    const Status &error() const { return error_; }

    /** HTTP status to answer a poisoned stream with (400 malformed,
     *  413 oversized body, 431 oversized line/headers, 505 bad
     *  version, 501 unsupported encoding). */
    int httpErrorStatus() const { return httpStatus_; }

    /** Mid-request: bytes consumed toward an incomplete request.
     *  Used by drain logic to tell an idle keep-alive connection
     *  from one that stopped mid-request. */
    bool midRequest() const;

  private:
    enum class State { RequestLine, Headers, Body };

    Status poison(int http_status, Status why);
    Status parseRequestLine(const std::string &line);
    Status parseHeaderLine(const std::string &line);
    Status finishHeaders();

    ParserLimits limits_;
    State state_ = State::RequestLine;
    std::string buf_;          ///< unconsumed stream bytes
    HttpRequest cur_;
    std::size_t headerBytes_ = 0;
    std::size_t bodyExpected_ = 0;
    bool sawContentLength_ = false;
    std::deque<HttpRequest> ready_;
    Status error_ = Status::ok();
    int httpStatus_ = 0;
};

/** One response to render. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    bool close = false; ///< emit "Connection: close"
    /** Extra headers, rendered verbatim ("Retry-After: 1"). */
    std::vector<std::string> extraHeaders;
};

/** Reason phrase for the status codes the daemon emits. */
const char *httpStatusText(int status);

/** Serialize a response (HTTP/1.1, Content-Length framing). */
std::string renderResponse(const HttpResponse &resp);

/** Map a Status from a service handler onto an HTTP status. */
int httpStatusFor(StatusCode code);

/** {"error":"..."} body for an error response. */
std::string errorBody(const std::string &message);

} // namespace tomur::serve

#endif // TOMUR_SERVE_HTTP_HH
