#include "serve/service.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include <sstream>

#include "common/deadline.hh"
#include "common/report.hh"
#include "common/strutil.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"
#include "serve/observe.hh"
#include "tomur/attribution.hh"

namespace tomur::serve {

// ---------------------------------------------------------------
// Flat-JSON field extraction
// ---------------------------------------------------------------

namespace {

/** Position just past `"key"` followed by ':' (npos if absent). */
std::size_t
valueStart(const std::string &body, const std::string &key)
{
    std::string needle = "\"" + key + "\"";
    std::size_t at = 0;
    while ((at = body.find(needle, at)) != std::string::npos) {
        std::size_t p = at + needle.size();
        while (p < body.size() &&
               std::isspace(static_cast<unsigned char>(body[p])))
            ++p;
        if (p < body.size() && body[p] == ':') {
            ++p;
            while (p < body.size() &&
                   std::isspace(
                       static_cast<unsigned char>(body[p])))
                ++p;
            return p;
        }
        at += 1; // quoted key without a colon (e.g. a string value)
    }
    return std::string::npos;
}

} // namespace

bool
jsonHasField(const std::string &body, const std::string &key)
{
    return valueStart(body, key) != std::string::npos;
}

Result<double>
jsonNumberField(const std::string &body, const std::string &key)
{
    std::size_t p = valueStart(body, key);
    if (p == std::string::npos)
        return Status::notFound("field '" + key + "' is absent");
    std::size_t end = p;
    while (end < body.size() &&
           std::strchr("+-0123456789.eE", body[end]) != nullptr)
        ++end;
    if (end == p) {
        return Status::invalidArgument(
            "field '" + key + "' is not a number");
    }
    std::string token = body.substr(p, end - p);
    char *stop = nullptr;
    double v = std::strtod(token.c_str(), &stop);
    if (stop != token.c_str() + token.size() || !std::isfinite(v)) {
        return Status::invalidArgument(
            "field '" + key + "' is not a finite number");
    }
    return v;
}

Result<std::string>
jsonStringField(const std::string &body, const std::string &key)
{
    std::size_t p = valueStart(body, key);
    if (p == std::string::npos)
        return Status::notFound("field '" + key + "' is absent");
    if (p >= body.size() || body[p] != '"') {
        return Status::invalidArgument(
            "field '" + key + "' is not a string");
    }
    std::string out;
    for (std::size_t i = p + 1; i < body.size(); ++i) {
        char c = body[i];
        if (c == '"')
            return out;
        if (c == '\\') {
            if (i + 1 >= body.size())
                break;
            char esc = body[++i];
            if (esc == '"' || esc == '\\' || esc == '/')
                out.push_back(esc);
            else
                return Status::invalidArgument(
                    "unsupported escape in field '" + key + "'");
            continue;
        }
        out.push_back(c);
    }
    return Status::invalidArgument(
        "unterminated string in field '" + key + "'");
}

// ---------------------------------------------------------------
// Reply helpers
// ---------------------------------------------------------------

ServiceReply
replyFromStatus(const Status &st)
{
    ServiceReply r;
    r.status = httpStatusFor(st.code());
    r.body = errorBody(st.toString());
    return r;
}

// ---------------------------------------------------------------
// ModelService
// ---------------------------------------------------------------

ModelService::ModelService(
    ModelRegistry &registry,
    std::vector<core::ContentionLevel> reference_levels,
    std::string label)
    : registry_(registry), levels_(std::move(reference_levels)),
      label_(std::move(label))
{
}

ServiceReply
ModelService::handle(const HttpRequest &req)
{
    const std::string path = req.path();
    if (path == "/healthz") {
        if (req.method != "GET" && req.method != "HEAD")
            return {405, "application/json",
                    errorBody("use GET /healthz")};
        return handleHealthz();
    }
    if (path == "/metrics") {
        if (req.method != "GET")
            return {405, "application/json",
                    errorBody("use GET /metrics")};
        return handleMetrics();
    }
    if (path == "/report") {
        if (req.method != "GET")
            return {405, "application/json",
                    errorBody("use GET /report")};
        return handleReport(req);
    }
    if (path == "/predict") {
        if (req.method != "POST")
            return {405, "application/json",
                    errorBody("use POST /predict")};
        return handlePredict(req);
    }
    if (path == "/diagnose") {
        if (req.method != "POST")
            return {405, "application/json",
                    errorBody("use POST /diagnose")};
        return handleDiagnose(req);
    }
    if (path == "/reload") {
        if (req.method != "POST")
            return {405, "application/json",
                    errorBody("use POST /reload")};
        return handleReload(req);
    }
    if (path.rfind("/debug/", 0) == 0) {
        if (req.method != "GET")
            return {405, "application/json",
                    errorBody("use GET " + path)};
        return handleDebug(path);
    }
    return {404, "application/json",
            errorBody("no such endpoint '" + path + "'")};
}

ServiceReply
ModelService::handleHealthz() const
{
    auto snap = registry_.current();
    bool degraded =
        snap && snap.model->health().anyDegraded();
    ServiceReply r;
    r.body = strf("{\"status\":\"%s\",\"nf\":\"%s\","
                  "\"model_version\":%llu,\"degraded\":%s}",
                  draining_ ? "draining" : "ok",
                  jsonEscape(label_).c_str(),
                  (unsigned long long)snap.version,
                  degraded ? "true" : "false");
    if (!snap) {
        r.status = 503;
        r.body = errorBody("no model installed");
    }
    return r;
}

ServiceReply
ModelService::handleMetrics() const
{
    ServiceReply r;
    r.contentType = "text/plain; version=0.0.4";
    r.body = metrics().dumpString();
    return r;
}

ServiceReply
ModelService::handleReport(const HttpRequest &req) const
{
    ReportArtifacts artifacts;
    artifacts.metricsText = metrics().dumpString();
    ReportOptions opts;
    opts.html = req.queryParam("html") == "1";
    opts.title = "Tomur serve report (" + label_ + ")";
    auto rendered = renderReport(artifacts, opts);
    if (!rendered)
        return replyFromStatus(rendered.status());
    ServiceReply r;
    r.contentType =
        opts.html ? "text/html; charset=utf-8" : "text/plain";
    r.body = std::move(rendered.value());
    return r;
}

namespace {

/** /debug responses are cap-bounded like requests: keep only the
 *  newest complete lines that fit. */
constexpr std::size_t kDebugBodyCap = 256 * 1024;

std::string
capTailLines(std::string body)
{
    if (body.size() <= kDebugBodyCap)
        return body;
    std::size_t cut = body.size() - kDebugBodyCap;
    std::size_t nl = body.find('\n', cut);
    if (nl == std::string::npos)
        return {};
    return body.substr(nl + 1);
}

} // namespace

ServiceReply
ModelService::handleDebug(const std::string &path) const
{
    ServiceReply r;
    if (path == "/debug/vars") {
        r.body = metrics().dumpJsonString();
        return r;
    }
    if (path == "/debug/trace") {
        if (!tracer().enabled()) {
            r.body = "{\"enabled\":false,\"records\":0}";
            return r;
        }
        TraceExportOptions topts;
        topts.canonical = true;
        r.contentType = "application/jsonl";
        r.body = capTailLines(tracer().exportString(topts));
        return r;
    }
    // Observatory-backed views 503 without one attached — but only
    // the known views: an unknown /debug path is a 404 either way.
    bool backed = path == "/debug/slo" || path == "/debug/access" ||
                  path == "/debug/profile";
    if (backed && observatory_ == nullptr) {
        return {503, "application/json",
                errorBody("observatory not attached")};
    }
    if (path == "/debug/slo") {
        r.contentType = "application/jsonl";
        r.body = capTailLines(observatory_->slo.exportString());
        return r;
    }
    if (path == "/debug/access") {
        r.contentType = "application/jsonl";
        r.body = capTailLines(
            observatory_->accessLog.exportString());
        return r;
    }
    if (path == "/debug/profile") {
        if (observatory_->profiler == nullptr) {
            return {503, "application/json",
                    errorBody("no profiler attached")};
        }
        std::ostringstream ss;
        observatory_->profiler->exportText(ss);
        r.contentType = "text/plain";
        r.body = capTailLines(ss.str());
        return r;
    }
    return {404, "application/json",
            errorBody("no such endpoint '" + path + "'")};
}

Result<traffic::TrafficProfile>
ModelService::profileFromBody(const std::string &body) const
{
    auto profile = traffic::TrafficProfile::defaults();
    struct
    {
        const char *key;
        traffic::Attribute attr;
        double min, max;
    } fields[] = {
        {"flows", traffic::Attribute::FlowCount, 1.0, 1e9},
        {"size", traffic::Attribute::PacketSize, 64.0, 1e6},
        {"mtbr", traffic::Attribute::Mtbr, 0.0, 1e7},
    };
    for (const auto &f : fields) {
        if (!jsonHasField(body, f.key))
            continue;
        auto v = jsonNumberField(body, f.key);
        if (!v)
            return v.status();
        if (v.value() < f.min || v.value() > f.max) {
            return Status::invalidArgument(
                strf("field '%s' = %g is outside [%g, %g]", f.key,
                     v.value(), f.min, f.max));
        }
        profile = profile.withAttribute(f.attr, v.value());
    }
    return profile;
}

ServiceReply
ModelService::handlePredict(const HttpRequest &req) const
{
    auto snap = registry_.current();
    if (!snap) {
        return {503, "application/json",
                errorBody("no model installed")};
    }
    auto profile = profileFromBody(req.body);
    if (!profile)
        return replyFromStatus(profile.status());

    checkDeadline("server.predict");
    auto b = snap.model->predictDetailed(levels_, profile.value());
    metrics().counter("tomur_server_predictions_total").inc();

    double drop_pct =
        b.soloThroughput > 0.0
            ? 100.0 * (1.0 - b.predicted / b.soloThroughput)
            : 0.0;
    ServiceReply r;
    r.body = strf(
        "{\"nf\":\"%s\",\"model_version\":%llu,"
        "\"profile\":{\"flows\":%llu,\"size\":%llu,\"mtbr\":%g},"
        "\"solo_pps\":%.1f,\"predicted_pps\":%.1f,"
        "\"drop_pct\":%.2f,\"dominant\":\"%s\","
        "\"confidence\":%.2f,\"degraded\":%s%s%s}",
        jsonEscape(label_).c_str(),
        (unsigned long long)snap.version,
        (unsigned long long)profile.value().flowCount,
        (unsigned long long)profile.value().packetSize,
        profile.value().mtbr, b.soloThroughput, b.predicted,
        drop_pct,
        core::attributedResourceName(b.dominantResource),
        b.confidence, b.degraded ? "true" : "false",
        b.degraded ? ",\"degraded_reason\":\"" : "",
        b.degraded
            ? (jsonEscape(b.degradedReason) + "\"").c_str()
            : "");
    return r;
}

ServiceReply
ModelService::handleDiagnose(const HttpRequest &req) const
{
    auto snap = registry_.current();
    if (!snap) {
        return {503, "application/json",
                errorBody("no model installed")};
    }
    auto profile = profileFromBody(req.body);
    if (!profile)
        return replyFromStatus(profile.status());

    checkDeadline("server.diagnose");
    auto b = snap.model->predictDetailed(levels_, profile.value());
    auto attribution = core::attributeContention(b);
    metrics().counter("tomur_server_diagnoses_total").inc();

    std::string ranked;
    for (const auto &c : attribution.ranked) {
        if (!ranked.empty())
            ranked += ",";
        ranked += strf("{\"resource\":\"%s\",\"drop_pps\":%.1f,"
                       "\"share\":%.3f}",
                       core::attributedResourceName(c.resource),
                       c.drop, c.share);
    }
    ServiceReply r;
    r.body = strf(
        "{\"nf\":\"%s\",\"model_version\":%llu,"
        "\"dominant\":\"%s\",\"solo_pps\":%.1f,"
        "\"predicted_pps\":%.1f,\"total_drop_pps\":%.1f,"
        "\"confidence\":%.2f,\"degraded\":%s,\"ranked\":[%s]}",
        jsonEscape(label_).c_str(),
        (unsigned long long)snap.version,
        core::attributedResourceName(
            attribution.dominantResource),
        attribution.soloThroughput, attribution.predicted,
        attribution.totalDrop, attribution.confidence,
        attribution.degraded ? "true" : "false", ranked.c_str());
    return r;
}

ServiceReply
ModelService::handleReload(const HttpRequest &req)
{
    auto path = jsonStringField(req.body, "model");
    if (!path)
        return replyFromStatus(path.status());
    auto swapped = registry_.swapFromFile(path.value());
    if (!swapped) {
        // The previous version keeps serving; say so explicitly.
        ServiceReply r = replyFromStatus(swapped.status());
        r.body = strf("{\"error\":\"%s\","
                      "\"retained_version\":%llu}",
                      jsonEscape(swapped.status().toString())
                          .c_str(),
                      (unsigned long long)registry_.version());
        return r;
    }
    ServiceReply r;
    r.body = strf("{\"version\":%llu,\"source\":\"%s\"}",
                  (unsigned long long)swapped.value(),
                  jsonEscape(path.value()).c_str());
    return r;
}

} // namespace tomur::serve
