#include "serve/registry.hh"

#include <fstream>

#include "common/logging.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"

namespace tomur::serve {

namespace {

Counter &
swapOkCounter()
{
    static Counter &c =
        metrics().counter("tomur_server_model_swaps_total");
    return c;
}

Counter &
swapFailCounter()
{
    static Counter &c =
        metrics().counter("tomur_server_model_swap_failures_total");
    return c;
}

Counter &
reloadFailCounter()
{
    static Counter &c =
        metrics().counter("tomur_server_reload_failures_total");
    return c;
}

Gauge &
versionGauge()
{
    static Gauge &g =
        metrics().gauge("tomur_server_model_version");
    return g;
}

} // namespace

ModelSnapshot
ModelRegistry::current() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ModelSnapshot s;
    s.model = model_;
    s.version = version_;
    s.source = source_;
    return s;
}

std::uint64_t
ModelRegistry::version() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return version_;
}

std::uint64_t
ModelRegistry::publish(core::TomurModel model, std::string source)
{
    auto fresh = std::make_shared<const core::TomurModel>(
        std::move(model));
    std::lock_guard<std::mutex> lock(mutex_);
    model_ = std::move(fresh);
    source_ = std::move(source);
    ++version_;
    versionGauge().set(static_cast<double>(version_));
    return version_;
}

std::uint64_t
ModelRegistry::install(core::TomurModel model, std::string source)
{
    std::lock_guard<std::mutex> swap_lock(swapMutex_);
    return publish(std::move(model), std::move(source));
}

Result<std::uint64_t>
ModelRegistry::swapFrom(const Loader &loader, std::string source)
{
    std::lock_guard<std::mutex> swap_lock(swapMutex_);
    TraceSpan span("server.model-swap");
    span.field("source", source);
    // Build the incoming model entirely off to the side: readers
    // keep serving the current version for the full duration of the
    // load, and see the new pointer only after it succeeded.
    auto loaded = loader();
    if (!loaded) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++swapsFailed_;
        }
        swapFailCounter().inc();
        reloadFailCounter().inc();
        warnEvent("server", "model-swap-failed",
                  {{"source", source},
                   {"error", loaded.status().message()}});
        return loaded.status().withContext(
            "hot-swap from '" + source + "'");
    }
    if (loaded.value().health().anyDegraded()) {
        warnEvent("server", "model-swap-degraded",
                  {{"source", source}});
    }
    std::uint64_t v =
        publish(std::move(loaded.value()), source);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++swapsSucceeded_;
    }
    swapOkCounter().inc();
    return v;
}

Result<std::uint64_t>
ModelRegistry::swapFromFile(const std::string &path)
{
    return swapFrom(
        [&path]() -> Result<core::TomurModel> {
            std::ifstream in(path, std::ios::binary);
            if (!in) {
                return Status::ioError("cannot open model file '" +
                                       path + "'");
            }
            core::TomurModel model;
            if (Status st = model.load(in); !st)
                return st;
            return model;
        },
        path);
}

std::size_t
ModelRegistry::swapsSucceeded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return swapsSucceeded_;
}

std::size_t
ModelRegistry::swapsFailed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return swapsFailed_;
}

} // namespace tomur::serve
