/**
 * @file
 * The deterministic serving core: connection state machines, bounded
 * queues with explicit load shedding, per-client token-bucket
 * admission, per-request cooperative deadlines, and graceful drain.
 *
 * Robustness-first design decisions:
 *
 *  - *Shed, don't collapse.* Admission is checked the moment a
 *    request finishes parsing: a client over its token budget gets
 *    429 (+Retry-After) while the connection stays usable; a full
 *    ready queue or a connection cap gets 503 (+Retry-After, so
 *    backoff-aware clients treat shedding and throttling
 *    uniformly). Overload produces
 *    fast, well-formed refusals, never an unbounded queue.
 *  - *Bound every request's time.* Each admitted request runs under
 *    its own Deadline (wall-clock in production, granule-counted in
 *    tests); a trip maps to 504 and
 *    tomur_server_deadline_misses_total, and the daemon moves on.
 *  - *Survive anything a connection does.* Parser poison maps to a
 *    4xx and a close; handler exceptions map to 500; write-buffer
 *    blowup (a reader that never reads) drops the connection. No
 *    client behaviour reaches process exit.
 *  - *Drain, don't vanish.* beginDrain() stops admitting, answers
 *    new requests 503 + Connection: close, finishes everything
 *    already admitted, and reports drained() once the last byte is
 *    flushed.
 *
 * The core is transport-agnostic and single-threaded by design:
 * step() performs one bounded round of accept/read/handle/flush over
 * whatever Transports it holds. The epoll front end (epoll_server.hh)
 * calls step() on readiness; tests and the load generator call it
 * directly with MemoryTransports, which makes every scheduling
 * decision — and every chaos scenario — deterministic.
 */

#ifndef TOMUR_SERVE_SERVER_HH
#define TOMUR_SERVE_SERVER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/http.hh"
#include "serve/observe.hh"
#include "serve/service.hh"
#include "serve/transport.hh"

namespace tomur::serve {

/** Serving limits and budgets. */
struct ServeOptions
{
    ParserLimits parser{};

    /** Open connections the daemon holds at once; excess accepts
     *  are answered 503 and closed immediately. */
    std::size_t maxConnections = 256;
    /** Parsed-and-admitted requests waiting to be handled; beyond
     *  this depth new requests are shed with 503. */
    std::size_t maxQueueDepth = 64;
    /** Requests handled per step() — the service's concurrency
     *  stand-in; keeps one step's work bounded. */
    std::size_t maxRequestsPerStep = 8;
    /** Accepts attempted per step (bounds accept storms). */
    std::size_t maxAcceptsPerStep = 32;
    /** Bytes read per read() call. */
    std::size_t readChunkBytes = 4096;
    /** read() calls per connection per step (a firehose client
     *  cannot starve the others within a step). */
    std::size_t maxReadsPerConnPerStep = 16;
    /** Unflushed response bytes before a non-reading client is
     *  dropped. */
    std::size_t maxWriteBufferBytes = 1 << 20;

    /** Per-request wall-clock budget (0 = off). */
    double requestDeadlineMs = 0.0;
    /** Per-request granule budget (0 = off; takes precedence over
     *  the wall-clock budget — the deterministic test mode). */
    std::uint64_t requestDeadlineGranules = 0;

    /** Token-bucket admission per client id: burst capacity and
     *  whether admission is enabled (capacity <= 0 disables it).
     *  Buckets refill via tickTokens(). */
    double bucketCapacity = 0.0;
};

/** Monotonic serving counters (also mirrored into tomur_server_*
 *  metrics; these are the test-facing copies). */
struct ServerStats
{
    std::size_t accepted = 0;
    std::size_t acceptFailures = 0;
    std::size_t acceptShed = 0;     ///< 503 at the connection cap
    std::size_t parseErrors = 0;
    std::size_t requestsAdmitted = 0;
    std::size_t requestsHandled = 0;
    std::size_t shed = 0;           ///< 503 at the queue cap / drain
    std::size_t throttled = 0;      ///< 429 token-bucket refusals
    std::size_t deadlineMisses = 0; ///< 504 responses
    std::size_t internalErrors = 0; ///< 500 from handler exceptions
    std::size_t droppedRequests = 0; ///< admitted, conn died first
    std::size_t connectionsClosed = 0;
};

class Server
{
  public:
    Server(ServeOptions opts, Service &service);
    ~Server();

    /** Attach the accept source (may be null: connections can also
     *  be injected with addConnection). */
    void setListener(Listener *listener) { listener_ = listener; }

    /**
     * Attach the serving observatory (may be null = observability
     * off, the default). The core then writes an AccessRecord for
     * every request outcome, folds each outcome into the SLO
     * tracker (mirroring burn events as slo.event trace points),
     * and — when the bundle carries a profiler — wraps each step
     * phase in a sampled serve.* profiler scope and maintains
     * tomur_server_profiler_overhead_frac. Caller owns the bundle;
     * same lifetime rule as setListener.
     */
    void setObservatory(ServerObservatory *observatory);

    /** Steps taken so far — the logical clock access records carry
     *  (deterministic, unlike wall time). */
    std::uint64_t stepIndex() const { return stepIndex_; }

    /** Inject an established connection (tests, load generator). */
    void addConnection(std::unique_ptr<Transport> transport,
                       std::string client_id);

    /**
     * One bounded round: accept new connections, read + parse every
     * connection, admit or shed completed requests, handle up to
     * maxRequestsPerStep admitted requests, flush write buffers,
     * reap dead connections. Returns true when any work was done
     * (the epoll loop uses this to decide whether to re-step before
     * sleeping).
     */
    bool step();

    /** Add `tokens` to every client bucket (capped at capacity).
     *  The epoll loop calls this with elapsed-time-scaled amounts;
     *  tests call it explicitly. */
    void tickTokens(double tokens);

    /** Stop accepting and admitting; finish what was admitted. */
    void beginDrain();
    bool draining() const { return draining_; }

    /** Everything admitted has been handled and flushed (idle
     *  keep-alive connections don't block drain; they are closed). */
    bool drained() const;

    /** Close every connection immediately (drain deadline tripped;
     *  admitted-but-unhandled requests are dropped). */
    void abortConnections();

    std::size_t openConnections() const;
    const ServerStats &stats() const { return stats_; }

  private:
    struct Connection
    {
        std::uint64_t id = 0;
        std::unique_ptr<Transport> transport;
        std::string clientId;
        HttpRequestParser parser;
        std::string writeBuf;
        std::size_t writeOff = 0;
        std::size_t inflight = 0; ///< admitted, not yet answered
        bool sawEof = false;
        bool closeAfterFlush = false;
        bool dead = false;
        /** Parser poisoned: the 4xx is held back until responses to
         *  requests pipelined *before* the garbage have gone out, so
         *  the connection never reorders responses. */
        bool parseErrorPending = false;
        HttpResponse parseErrorResp;
        /** Requests parsed on this connection — the "-r<seq>" half
         *  of the correlation id. */
        std::uint64_t requestSeq = 0;

        Connection(ParserLimits limits)
            : parser(limits)
        {
        }
    };

    struct Pending
    {
        std::shared_ptr<Connection> conn;
        HttpRequest request;
        std::uint64_t enqueuedNs = 0;
        std::string rid; ///< correlation id ("c<conn>-r<seq>")
        std::uint64_t admittedStep = 0;
    };

    void acceptPhase();
    void readPhase(const std::shared_ptr<Connection> &conn);
    void admit(const std::shared_ptr<Connection> &conn);
    void handlePhase();
    void flushPhase(const std::shared_ptr<Connection> &conn);
    void respond(const std::shared_ptr<Connection> &conn,
                 HttpResponse resp);
    ServiceReply invokeService(const HttpRequest &req);
    bool admitBucket(const std::string &client_id);
    void killConnection(const std::shared_ptr<Connection> &conn);
    void logAccess(AccessRecord rec);
    void ingestSlo(const std::string &path, int status,
                   double latency_ms, bool deadline_miss);

    ServeOptions opts_;
    Service &service_;
    Listener *listener_ = nullptr;
    std::vector<std::shared_ptr<Connection>> conns_;
    std::deque<Pending> ready_;
    std::map<std::string, double> buckets_;
    ServerStats stats_;
    bool draining_ = false;
    bool didWork_ = false;
    std::uint64_t nextConnId_ = 1;
    std::uint64_t stepIndex_ = 0;

    ServerObservatory *observatory_ = nullptr;
    /** The profiler whose sites setObservatory() registered. A
     *  profiler attached to the bundle afterwards is served by
     *  /debug/profile but not sampled by the core until the next
     *  setObservatory() call — beginToken() elides its bounds
     *  check, so stepping with unregistered site ids is UB. */
    SamplingProfiler *registeredProfiler_ = nullptr;
    int siteAccept_ = 0, siteRead_ = 0;
    int siteHandle_ = 0, siteFlush_ = 0;
    double profPerTokenNs_ = 0.0;
    std::uint64_t profAttachNs_ = 0;
};

} // namespace tomur::serve

#endif // TOMUR_SERVE_SERVER_HH
