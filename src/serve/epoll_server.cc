#include "serve/epoll_server.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur::serve {

// ---------------------------------------------------------------
// Shutdown flag + handlers
// ---------------------------------------------------------------

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void
onShutdownSignal(int)
{
    // Async-signal-safe: one flag store, nothing else. The event
    // loop (or the autopilot sample loop) notices and drains.
    g_shutdown = 1;
}

std::uint64_t
steadyNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

void
installShutdownHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onShutdownSignal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    // A peer that hangs up mid-response must produce an EPIPE the
    // transport maps to a dead connection, not a process kill.
    std::signal(SIGPIPE, SIG_IGN);
}

bool
shutdownRequested()
{
    return g_shutdown != 0;
}

void
requestShutdown()
{
    g_shutdown = 1;
}

void
clearShutdownFlag()
{
    g_shutdown = 0;
}

// ---------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------

class EpollServer::TcpListener : public Listener
{
  public:
    TcpListener(int listen_fd, int epoll_fd)
        : listenFd_(listen_fd), epollFd_(epoll_fd)
    {
    }

    AcceptResult
    accept() override
    {
        AcceptResult r;
        struct sockaddr_in peer;
        socklen_t len = sizeof(peer);
        int fd = ::accept4(listenFd_,
                           reinterpret_cast<sockaddr *>(&peer),
                           &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                r.none = true;
            } else {
                r.error = Status::ioError(strf(
                    "accept: %s", std::strerror(errno)));
            }
            return r;
        }
        char addr[INET_ADDRSTRLEN] = "unknown";
        inet_ntop(AF_INET, &peer.sin_addr, addr, sizeof(addr));
        r.clientId = addr;

        struct epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
            // Not fatal: the 10 ms wait timeout still guarantees the
            // core polls this connection; it just loses low-latency
            // wakeups.
            warn(strf("epoll_ctl(add, fd %d): %s", fd,
                      std::strerror(errno)));
        }
        r.transport = std::make_unique<SocketTransport>(fd);
        return r;
    }

  private:
    int listenFd_;
    int epollFd_;
};

// ---------------------------------------------------------------
// EpollServer
// ---------------------------------------------------------------

EpollServer::EpollServer(Server &core, EpollOptions opts)
    : core_(core), opts_(opts)
{
    std::signal(SIGPIPE, SIG_IGN);

    listenFd_ = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listenFd_ < 0) {
        status_ = Status::ioError(
            strf("socket: %s", std::strerror(errno)));
        return;
    }
    int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<std::uint16_t>(opts_.port));
    if (inet_pton(AF_INET, opts_.bindAddress.c_str(),
                  &addr.sin_addr) != 1) {
        status_ = Status::invalidArgument(
            "unparseable bind address '" + opts_.bindAddress + "'");
        return;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        status_ = Status::ioError(
            strf("bind %s:%d: %s", opts_.bindAddress.c_str(),
                 opts_.port, std::strerror(errno)));
        return;
    }
    if (::listen(listenFd_, opts_.backlog) < 0) {
        status_ = Status::ioError(
            strf("listen: %s", std::strerror(errno)));
        return;
    }
    socklen_t len = sizeof(addr);
    if (getsockname(listenFd_,
                    reinterpret_cast<sockaddr *>(&addr),
                    &len) == 0) {
        boundPort_ = ntohs(addr.sin_port);
    }

    epollFd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0) {
        status_ = Status::ioError(
            strf("epoll_create1: %s", std::strerror(errno)));
        return;
    }
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev) < 0) {
        status_ = Status::ioError(
            strf("epoll_ctl(listen): %s", std::strerror(errno)));
        return;
    }
    listener_ = std::make_unique<TcpListener>(listenFd_, epollFd_);
    core_.setListener(listener_.get());
    lastTickNs_ = steadyNs();
}

EpollServer::~EpollServer()
{
    core_.setListener(nullptr);
    if (epollFd_ >= 0)
        ::close(epollFd_);
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
EpollServer::iterate()
{
    struct epoll_event events[64];
    // The wait only decides *when* to step; step() itself polls
    // every connection non-blockingly, so a missed registration or
    // a spurious wakeup cannot lose work.
    int n = epoll_wait(epollFd_, events, 64, opts_.waitTimeoutMs);
    (void)n;

    std::uint64_t now = steadyNs();
    if (opts_.bucketRefillPerSec > 0.0) {
        double elapsed_sec =
            static_cast<double>(now - lastTickNs_) / 1e9;
        core_.tickTokens(opts_.bucketRefillPerSec * elapsed_sec);
    }
    lastTickNs_ = now;

    // Re-step while progress is being made, bounded so one iteration
    // cannot spin forever on a pathological connection.
    for (int rounds = 0; rounds < 8; ++rounds) {
        if (!core_.step())
            break;
    }
}

Status
EpollServer::run()
{
    if (!status_.isOk())
        return status_;
    inform(strf("server: listening on %s:%d",
                opts_.bindAddress.c_str(), boundPort_));
    std::uint64_t drainStartNs = 0;
    for (;;) {
        if (shutdownRequested() && !core_.draining()) {
            core_.beginDrain();
            // Stop accepting at the socket level too: close the
            // listener so queued SYNs are refused, not ignored.
            if (listenFd_ >= 0) {
                epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_,
                          nullptr);
                ::close(listenFd_);
                listenFd_ = -1;
                core_.setListener(nullptr);
            }
            drainStartNs = steadyNs();
        }
        if (core_.draining()) {
            if (core_.drained()) {
                inform("server: drained cleanly");
                return Status::ok();
            }
            if (opts_.drainDeadlineMs > 0.0 &&
                static_cast<double>(steadyNs() - drainStartNs) /
                        1e6 >
                    opts_.drainDeadlineMs) {
                std::size_t open = core_.openConnections();
                core_.abortConnections();
                return Status::unavailable(strf(
                    "drain deadline (%.0f ms) tripped with %zu "
                    "connections still open",
                    opts_.drainDeadlineMs, open));
            }
        }
        iterate();
    }
}

} // namespace tomur::serve
