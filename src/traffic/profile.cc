#include "traffic/profile.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur::traffic {

const char *
attributeName(Attribute a)
{
    switch (a) {
      case Attribute::FlowCount:
        return "flow_count";
      case Attribute::PacketSize:
        return "packet_size";
      case Attribute::Mtbr:
        return "mtbr";
    }
    panic("attributeName: bad attribute");
}

TrafficProfile
TrafficProfile::defaults()
{
    return TrafficProfile{};
}

std::vector<double>
TrafficProfile::toVector() const
{
    return {static_cast<double>(flowCount),
            static_cast<double>(packetSize), mtbr};
}

double
TrafficProfile::attribute(Attribute a) const
{
    return toVector()[static_cast<int>(a)];
}

TrafficProfile
TrafficProfile::withAttribute(Attribute a, double value) const
{
    TrafficProfile p = *this;
    switch (a) {
      case Attribute::FlowCount:
        p.flowCount = static_cast<std::uint64_t>(
            std::llround(std::max(1.0, value)));
        break;
      case Attribute::PacketSize:
        p.packetSize = static_cast<std::uint64_t>(
            std::llround(std::max(64.0, value)));
        break;
      case Attribute::Mtbr:
        p.mtbr = std::max(0.0, value);
        break;
    }
    return p;
}

std::string
TrafficProfile::toString() const
{
    return strf("(%llu, %llu, %.0f)",
                static_cast<unsigned long long>(flowCount),
                static_cast<unsigned long long>(packetSize), mtbr);
}

AttributeRange
defaultRange(Attribute a)
{
    switch (a) {
      case Attribute::FlowCount:
        return {1000.0, 500000.0};
      case Attribute::PacketSize:
        return {64.0, 1500.0};
      case Attribute::Mtbr:
        return {0.0, 1100.0};
    }
    panic("defaultRange: bad attribute");
}

} // namespace tomur::traffic
