/**
 * @file
 * Traffic profiles: the three attributes the paper models (§5.1) —
 * flow count, packet size, and match-to-byte ratio (MTBR) — written
 * as a vector (flows, packet_size, mtbr), e.g. (16000, 1500, 600).
 */

#ifndef TOMUR_TRAFFIC_PROFILE_HH
#define TOMUR_TRAFFIC_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tomur::traffic {

/** Index of each attribute in the traffic feature vector. */
enum class Attribute : int
{
    FlowCount = 0,
    PacketSize = 1,
    Mtbr = 2,
};

/** Number of traffic attributes. */
constexpr int numAttributes = 3;

/** Attribute name for reports. */
const char *attributeName(Attribute a);

/** A traffic profile. */
struct TrafficProfile
{
    std::uint64_t flowCount = 16000;
    std::uint64_t packetSize = 1500; ///< total frame bytes
    double mtbr = 600.0;             ///< matches per MB of payload

    /** The paper's default profile (16000, 1500, 600). */
    static TrafficProfile defaults();

    /** As a model feature vector (flows, size, mtbr). */
    std::vector<double> toVector() const;

    /** Read one attribute by index. */
    double attribute(Attribute a) const;

    /** Return a copy with one attribute replaced. */
    TrafficProfile withAttribute(Attribute a, double value) const;

    /** "(16000, 1500, 600)" rendering. */
    std::string toString() const;

    bool operator==(const TrafficProfile &o) const = default;
};

/** Valid ranges for each attribute, used by adaptive profiling. */
struct AttributeRange
{
    double min = 0.0;
    double max = 0.0;
};

/** Default exploration ranges per attribute (paper §7: up to 500 K
 *  flows, 64-1500 B packets, 0-1100 matches/MB). */
AttributeRange defaultRange(Attribute a);

} // namespace tomur::traffic

#endif // TOMUR_TRAFFIC_PROFILE_HH
