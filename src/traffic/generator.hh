/**
 * @file
 * Packet generator: DPDK-Pktgen-style traffic synthesis.
 *
 * Generates packets from `flowCount` distinct 5-tuples drawn
 * uniformly (uniform flow sizes, §7.1), with frame size fixed by the
 * profile and payloads synthesised to a target MTBR: a background of
 * non-matching filler bytes with exrex-generated rule matches
 * embedded at the density the MTBR requires.
 */

#ifndef TOMUR_TRAFFIC_GENERATOR_HH
#define TOMUR_TRAFFIC_GENERATOR_HH

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "net/packet.hh"
#include "regex/matcher.hh"
#include "traffic/profile.hh"

namespace tomur::traffic {

/**
 * Deterministic (seeded) traffic generator for one profile.
 */
class TrafficGen
{
  public:
    /**
     * @param profile traffic attributes
     * @param ruleset ruleset used for MTBR-targeted payloads; may be
     *        null when mtbr == 0
     * @param seed RNG seed
     */
    TrafficGen(const TrafficProfile &profile,
               const regex::RuleSet *ruleset, std::uint64_t seed);

    /** Generate the next packet (uniformly random flow). */
    net::Packet next();

    /** The flow key that next() used most recently. */
    const net::FiveTuple &lastFlow() const { return lastFlow_; }

    /** Deterministic i-th flow tuple of this generator. */
    net::FiveTuple flowTuple(std::uint64_t index) const;

    const TrafficProfile &profile() const { return profile_; }

    /**
     * Payload bytes per packet for this profile (frame minus
     * header stack).
     */
    std::size_t payloadLen() const { return payloadLen_; }

    /**
     * Synthesize one payload with matches embedded at the profile's
     * MTBR (exposed for tests).
     */
    std::vector<std::uint8_t> makePayload();

  private:
    TrafficProfile profile_;
    std::vector<regex::Pattern> patterns_; ///< parsed ruleset rules
    Rng rng_;
    std::size_t payloadLen_ = 0;
    double matchCarry_ = 0.0; ///< fractional matches carried over
    net::FiveTuple lastFlow_;
    std::uint16_t ipId_ = 0;
};

} // namespace tomur::traffic

#endif // TOMUR_TRAFFIC_GENERATOR_HH
