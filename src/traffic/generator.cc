#include "traffic/generator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "regex/generator.hh"

namespace tomur::traffic {

TrafficGen::TrafficGen(const TrafficProfile &profile,
                       const regex::RuleSet *ruleset,
                       std::uint64_t seed)
    : profile_(profile), rng_(seed)
{
    if (profile_.flowCount == 0)
        fatal("TrafficGen: zero flows");
    payloadLen_ = net::PacketBuilder::payloadForFrame(
        profile_.packetSize, net::IpProto::Udp);
    if (profile_.mtbr > 0.0) {
        if (!ruleset)
            fatal("TrafficGen: MTBR > 0 requires a ruleset");
        for (const auto &r : ruleset->rules) {
            regex::ParseOptions o;
            o.caseInsensitive = r.caseInsensitive;
            patterns_.push_back(
                regex::parseOrDie(r.pattern, o));
        }
    }
}

net::FiveTuple
TrafficGen::flowTuple(std::uint64_t index) const
{
    // Deterministic mapping index -> tuple via splitmix hashing so
    // flows are stable across generator instances with equal seeds.
    std::uint64_t h = index * 0x9e3779b97f4a7c15ULL + 0x1234567;
    std::uint64_t a = splitmix64(h);
    std::uint64_t b = splitmix64(h);
    net::FiveTuple t;
    t.srcIp.value = 0x0a000000u | (a & 0x00ffffffu); // 10.x.x.x
    t.dstIp.value = 0xc0a80000u | ((a >> 24) & 0xffffu); // 192.168.x.x
    t.srcPort = static_cast<std::uint16_t>(1024 + (b & 0x7fff));
    t.dstPort = static_cast<std::uint16_t>(1024 + ((b >> 16) & 0x7fff));
    t.proto = static_cast<std::uint8_t>(net::IpProto::Udp);
    return t;
}

std::vector<std::uint8_t>
TrafficGen::makePayload()
{
    std::vector<std::uint8_t> payload(payloadLen_);
    // Background filler: high bytes that protocol signatures never
    // match (validated by RegexRuleset.RandomBinaryRarelyMatches).
    for (auto &b : payload)
        b = static_cast<std::uint8_t>(rng_.uniformInt(0x80, 0xff));

    if (profile_.mtbr <= 0.0 || patterns_.empty() || payload.empty())
        return payload;

    // Expected matches for this packet; carry fractions across
    // packets so the long-run density hits the target MTBR.
    double expected =
        profile_.mtbr * static_cast<double>(payloadLen_) / 1e6;
    matchCarry_ += expected;
    int inserts = static_cast<int>(matchCarry_);
    matchCarry_ -= inserts;

    for (int k = 0; k < inserts; ++k) {
        const regex::Pattern &pat =
            patterns_[rng_.uniformInt(patterns_.size())];
        auto sig = regex::generateMatch(pat, rng_);
        if (sig.empty() || sig.size() > payload.size())
            continue;
        std::size_t pos = pat.anchorStart
            ? 0
            : rng_.uniformInt(payload.size() - sig.size() + 1);
        if (pat.anchorEnd)
            pos = payload.size() - sig.size();
        std::copy(sig.begin(), sig.end(), payload.begin() + pos);
    }
    return payload;
}

net::Packet
TrafficGen::next()
{
    std::uint64_t flow = rng_.uniformInt(profile_.flowCount);
    lastFlow_ = flowTuple(flow);
    auto payload = makePayload();
    return net::PacketBuilder::build(lastFlow_, payload, ipId_++);
}

} // namespace tomur::traffic
