#include "traffic/synth.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <map>
#include <set>
#include <sstream>

#include "common/strutil.hh"

namespace tomur::traffic {

namespace {

/** Same sanity bounds as the schedule parser (tomur/monitor.cc):
 *  generous, meant to reject garbage that lexes as a number — and to
 *  stop a fuzzer from smuggling in a profile or repeat count that
 *  melts the replay — not to police realistic traffic. */
constexpr double kMaxFlows = 1e9;
constexpr double kMaxPacketSize = 1e6;
constexpr double kMaxMtbr = 1e12;
constexpr double kMaxRepeats = 1e6;
/** Steps per phase directive (period, ramp, hold, decay, churn). */
constexpr double kMaxPhaseSteps = 4096;
constexpr double kMaxCycles = 64;
constexpr double kMaxPeak = 1000.0;
/** Whole-scenario step budget: bounds the compiled vector (and with
 *  kMaxRepeats the total sample count) no matter what the script
 *  says. */
constexpr std::size_t kMaxScenarioSteps = 100000;

double
clampFlows(double flows)
{
    return std::clamp(flows, 1.0, kMaxFlows);
}

double
clampMtbr(double mtbr)
{
    return std::clamp(mtbr, 0.0, kMaxMtbr);
}

TrafficProfile
withFlows(const TrafficProfile &base, double flows)
{
    return base.withAttribute(Attribute::FlowCount,
                              clampFlows(flows));
}

/** Strict full-token numeric parse: the whole token must be one
 *  finite number (no trailing junk, no partial reads). */
bool
parseNumberToken(const std::string &token, double *out)
{
    const char *begin = token.c_str();
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin || *end != '\0' || !std::isfinite(v))
        return false;
    *out = v;
    return true;
}

/** The key=value arguments of one directive line, with range-checked
 *  typed accessors that accumulate the first error. */
class DirectiveArgs
{
  public:
    DirectiveArgs(int lineno, std::string directive)
        : lineno_(lineno), directive_(std::move(directive))
    {
    }

    Status add(const std::string &token)
    {
        auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            return Status::invalidArgument(
                strf("scenario line %d: expected key=value, "
                     "found '%s'",
                     lineno_, token.c_str()));
        }
        std::string key = token.substr(0, eq);
        std::string val = token.substr(eq + 1);
        if (values_.count(key)) {
            return Status::invalidArgument(
                strf("scenario line %d: duplicate key '%s'",
                     lineno_, key.c_str()));
        }
        double v = 0.0;
        if (!parseNumberToken(val, &v)) {
            return Status::invalidArgument(
                strf("scenario line %d: %s value '%s' is not a "
                     "finite number",
                     lineno_, key.c_str(), val.c_str()));
        }
        values_[key] = v;
        return Status::ok();
    }

    /** Range-checked fetch; absent keys yield the default. */
    double num(const char *key, double def, double lo, double hi)
    {
        auto it = values_.find(key);
        double v = it == values_.end() ? def : it->second;
        if (!error_.isOk())
            return v;
        if (v < lo || v > hi) {
            error_ = Status::invalidArgument(
                strf("scenario line %d: %s %s out of range "
                     "[%g, %g]",
                     lineno_, directive_.c_str(), key, lo, hi));
        }
        consumed_.insert(key);
        return v;
    }

    /** Like num() but requires an integral value. */
    int integer(const char *key, int def, double lo, double hi)
    {
        double v = num(key, static_cast<double>(def), lo, hi);
        if (error_.isOk() && v != std::floor(v)) {
            error_ = Status::invalidArgument(
                strf("scenario line %d: %s %s must be an integer",
                     lineno_, directive_.c_str(), key));
        }
        return static_cast<int>(v);
    }

    /** First range/type error, or an unknown-key error: every key on
     *  the line must have been consumed by an accessor. */
    Status finish() const
    {
        if (!error_.isOk())
            return error_;
        for (const auto &kv : values_) {
            if (!consumed_.count(kv.first)) {
                return Status::invalidArgument(
                    strf("scenario line %d: %s does not take "
                         "key '%s'",
                         lineno_, directive_.c_str(),
                         kv.first.c_str()));
            }
        }
        return Status::ok();
    }

  private:
    int lineno_;
    std::string directive_;
    std::map<std::string, double> values_;
    std::set<std::string> consumed_;
    Status error_ = Status::ok();
};

} // namespace

std::size_t
scenarioSamples(const std::vector<SynthStep> &steps)
{
    std::size_t n = 0;
    for (const auto &s : steps)
        n += static_cast<std::size_t>(s.repeats);
    return n;
}

std::vector<SynthStep>
diurnalSteps(const DiurnalOptions &opts)
{
    std::vector<SynthStep> out;
    double base = static_cast<double>(opts.base.flowCount);
    for (int c = 0; c < opts.cycles; ++c) {
        for (int i = 0; i < opts.period; ++i) {
            double phase = 2.0 * M_PI * static_cast<double>(i) /
                           static_cast<double>(opts.period);
            double flows =
                base * (1.0 + opts.amplitude * std::sin(phase));
            out.push_back(
                {withFlows(opts.base, flows), opts.repeats});
        }
    }
    return out;
}

std::vector<SynthStep>
flashCrowdSteps(const FlashCrowdOptions &opts)
{
    std::vector<SynthStep> out;
    double base = static_cast<double>(opts.base.flowCount);
    for (int i = 1; i <= opts.ramp; ++i) {
        double m = 1.0 + (opts.peak - 1.0) *
                             static_cast<double>(i) /
                             static_cast<double>(opts.ramp);
        out.push_back({withFlows(opts.base, base * m), opts.repeats});
    }
    for (int i = 0; i < opts.hold; ++i) {
        out.push_back(
            {withFlows(opts.base, base * opts.peak), opts.repeats});
    }
    for (int i = 1; i <= opts.decay; ++i) {
        double m = opts.peak + (1.0 - opts.peak) *
                                   static_cast<double>(i) /
                                   static_cast<double>(opts.decay);
        out.push_back({withFlows(opts.base, base * m), opts.repeats});
    }
    return out;
}

std::vector<SynthStep>
flowChurnSteps(const FlowChurnOptions &opts)
{
    std::vector<SynthStep> out;
    for (int i = 0; i < opts.steps; ++i) {
        double frac = opts.steps == 1
                          ? 0.0
                          : static_cast<double>(i) /
                                static_cast<double>(opts.steps - 1);
        double flows = opts.fromFlows +
                       (opts.toFlows - opts.fromFlows) * frac;
        out.push_back({withFlows(opts.base, flows), opts.repeats});
    }
    return out;
}

std::vector<SynthStep>
mtbrSpikeSteps(const MtbrSpikeOptions &opts)
{
    std::vector<SynthStep> out;
    double base = opts.base.mtbr;
    auto at = [&](double mtbr) {
        return SynthStep{opts.base.withAttribute(Attribute::Mtbr,
                                                 clampMtbr(mtbr)),
                         opts.repeats};
    };
    for (int i = 1; i <= opts.ramp; ++i) {
        out.push_back(at(base + (opts.mtbr - base) *
                                    static_cast<double>(i) /
                                    static_cast<double>(opts.ramp)));
    }
    for (int i = 0; i < opts.hold; ++i)
        out.push_back(at(opts.mtbr));
    for (int i = 1; i <= opts.ramp; ++i) {
        out.push_back(at(opts.mtbr +
                         (base - opts.mtbr) *
                             static_cast<double>(i) /
                             static_cast<double>(opts.ramp)));
    }
    return out;
}

std::vector<SynthStep>
steadySteps(const TrafficProfile &base, int samples)
{
    return {{base, samples}};
}

std::vector<SynthStep>
defaultComposite(const TrafficProfile &base)
{
    std::vector<SynthStep> out = steadySteps(base, 40);
    auto append = [&](std::vector<SynthStep> steps) {
        out.insert(out.end(), steps.begin(), steps.end());
    };
    DiurnalOptions diurnal;
    diurnal.base = base;
    diurnal.amplitude = 0.6;
    diurnal.period = 24;
    append(diurnalSteps(diurnal));
    append(steadySteps(base, 10));
    FlashCrowdOptions flash;
    flash.base = base;
    flash.peak = 6.0;
    flash.ramp = 3;
    flash.hold = 6;
    flash.decay = 3;
    append(flashCrowdSteps(flash));
    append(steadySteps(base, 10));
    MtbrSpikeOptions spike;
    spike.base = base;
    spike.mtbr = 1100.0;
    spike.ramp = 2;
    spike.hold = 8;
    append(mtbrSpikeSteps(spike));
    append(steadySteps(base, 20));
    return out;
}

Result<std::vector<SynthStep>>
parseScenario(std::istream &in)
{
    std::vector<SynthStep> steps;
    TrafficProfile base = TrafficProfile::defaults();
    std::string line;
    int lineno = 0;

    auto append = [&](std::vector<SynthStep> more) -> Status {
        if (steps.size() + more.size() > kMaxScenarioSteps) {
            return Status::invalidArgument(
                strf("scenario line %d: compiled scenario exceeds "
                     "%zu steps",
                     lineno, kMaxScenarioSteps));
        }
        steps.insert(steps.end(), more.begin(), more.end());
        return Status::ok();
    };

    while (std::getline(in, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ss(line);
        std::vector<std::string> tokens;
        std::string tok;
        while (ss >> tok)
            tokens.push_back(tok);
        if (tokens.empty())
            continue; // blank / comment-only line

        DirectiveArgs args(lineno, tokens[0]);
        for (std::size_t i = 1; i < tokens.size(); ++i) {
            if (auto st = args.add(tokens[i]); !st)
                return st;
        }

        const std::string &directive = tokens[0];
        Status appended = Status::ok();
        if (directive == "base") {
            double flows =
                args.num("flows",
                         static_cast<double>(base.flowCount), 1.0,
                         kMaxFlows);
            double size =
                args.num("size",
                         static_cast<double>(base.packetSize), 1.0,
                         kMaxPacketSize);
            double mtbr =
                args.num("mtbr", base.mtbr, 0.0, kMaxMtbr);
            if (auto st = args.finish(); !st)
                return st;
            base = base.withAttribute(Attribute::FlowCount, flows)
                       .withAttribute(Attribute::PacketSize, size)
                       .withAttribute(Attribute::Mtbr, mtbr);
        } else if (directive == "steady") {
            int n = args.integer("n", 20, 1.0, kMaxRepeats);
            if (auto st = args.finish(); !st)
                return st;
            appended = append(steadySteps(base, n));
        } else if (directive == "diurnal") {
            DiurnalOptions o;
            o.base = base;
            o.amplitude = args.num("amplitude", 0.5, 0.0, 0.99);
            o.period = args.integer("period", 32, 2.0,
                                    kMaxPhaseSteps);
            o.cycles = args.integer("cycles", 1, 1.0, kMaxCycles);
            o.repeats =
                args.integer("repeats", 1, 1.0, kMaxRepeats);
            if (auto st = args.finish(); !st)
                return st;
            appended = append(diurnalSteps(o));
        } else if (directive == "flash") {
            FlashCrowdOptions o;
            o.base = base;
            o.peak = args.num("peak", 8.0, 1.0, kMaxPeak);
            o.ramp =
                args.integer("ramp", 4, 1.0, kMaxPhaseSteps);
            o.hold =
                args.integer("hold", 8, 1.0, kMaxPhaseSteps);
            o.decay =
                args.integer("decay", 4, 1.0, kMaxPhaseSteps);
            o.repeats =
                args.integer("repeats", 1, 1.0, kMaxRepeats);
            if (auto st = args.finish(); !st)
                return st;
            appended = append(flashCrowdSteps(o));
        } else if (directive == "churn") {
            FlowChurnOptions o;
            o.base = base;
            o.fromFlows = args.num("from", 4000.0, 1.0, kMaxFlows);
            o.toFlows = args.num("to", 256000.0, 1.0, kMaxFlows);
            o.steps =
                args.integer("steps", 16, 2.0, kMaxPhaseSteps);
            o.repeats =
                args.integer("repeats", 1, 1.0, kMaxRepeats);
            if (auto st = args.finish(); !st)
                return st;
            appended = append(flowChurnSteps(o));
        } else if (directive == "mtbr_spike") {
            MtbrSpikeOptions o;
            o.base = base;
            o.mtbr = args.num("mtbr", 1100.0, 0.0, kMaxMtbr);
            o.ramp =
                args.integer("ramp", 2, 1.0, kMaxPhaseSteps);
            o.hold =
                args.integer("hold", 8, 1.0, kMaxPhaseSteps);
            o.repeats =
                args.integer("repeats", 1, 1.0, kMaxRepeats);
            if (auto st = args.finish(); !st)
                return st;
            appended = append(mtbrSpikeSteps(o));
        } else if (directive == "step") {
            double flows =
                args.num("flows",
                         static_cast<double>(base.flowCount), 1.0,
                         kMaxFlows);
            double size =
                args.num("size",
                         static_cast<double>(base.packetSize), 1.0,
                         kMaxPacketSize);
            double mtbr =
                args.num("mtbr", base.mtbr, 0.0, kMaxMtbr);
            int repeats =
                args.integer("repeats", 1, 1.0, kMaxRepeats);
            if (auto st = args.finish(); !st)
                return st;
            SynthStep step;
            step.profile =
                base.withAttribute(Attribute::FlowCount, flows)
                    .withAttribute(Attribute::PacketSize, size)
                    .withAttribute(Attribute::Mtbr, mtbr);
            step.repeats = repeats;
            appended = append({step});
        } else {
            return Status::invalidArgument(
                strf("scenario line %d: unknown directive '%s'",
                     lineno, directive.c_str()));
        }
        if (!appended)
            return appended;
    }
    if (steps.empty())
        return Status::invalidArgument("scenario has no steps");
    return steps;
}

std::string
emitScenario(const std::vector<SynthStep> &steps)
{
    std::string out = "# tomur scenario (canonical form)\n";
    for (const auto &s : steps) {
        out += strf("step flows=%llu size=%llu mtbr=%.17g "
                    "repeats=%d\n",
                    (unsigned long long)s.profile.flowCount,
                    (unsigned long long)s.profile.packetSize,
                    s.profile.mtbr, s.repeats);
    }
    return out;
}

} // namespace tomur::traffic
