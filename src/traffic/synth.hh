/**
 * @file
 * Nonstationary traffic synthesis: composable generators that turn a
 * base TrafficProfile into a schedule of profile steps exercising the
 * dynamics the paper's traffic-aware claim must survive — diurnal
 * load curves, flash crowds, flow-churn ramps that thrash NAT/LB flow
 * tables, and MTBR spikes (regex-heavy adversarial payloads) — plus a
 * small scenario-script DSL that compiles to the same step list.
 *
 * Everything here is deterministic (no RNG, no wall clock): a
 * scenario is a pure function of its script/options, so the replay
 * layers above (tomur/monitor, tomur/supervisor) keep their
 * width-invariant event-stream contract.
 *
 * Layering: traffic/ sits below tomur/, so steps are expressed as
 * SynthStep (profile + repeats); tomur::core::toSchedule() lowers
 * them onto the ScheduleStep/replaySchedule machinery.
 */

#ifndef TOMUR_TRAFFIC_SYNTH_HH
#define TOMUR_TRAFFIC_SYNTH_HH

#include <iosfwd>
#include <vector>

#include "common/status.hh"
#include "traffic/profile.hh"

namespace tomur::traffic {

/** One synthesized schedule step: hold `profile` for `repeats`
 *  samples. Mirrors core::ScheduleStep without the layering cycle. */
struct SynthStep
{
    TrafficProfile profile;
    int repeats = 1;

    bool operator==(const SynthStep &o) const = default;
};

/** Total sample count of a step list (sum of repeats). */
std::size_t scenarioSamples(const std::vector<SynthStep> &steps);

// ---------------------------------------------------------------
// Generators (each is one scenario "family")
// ---------------------------------------------------------------

/** Diurnal load curve: flow count follows one sinusoidal cycle per
 *  `period` steps, `cycles` times, swinging `amplitude` of the base
 *  flow count in each direction. */
struct DiurnalOptions
{
    TrafficProfile base;
    double amplitude = 0.5; ///< fraction of base flows, in [0, 0.99]
    int period = 32;        ///< steps per cycle
    int cycles = 1;
    int repeats = 1; ///< samples per step
};
std::vector<SynthStep> diurnalSteps(const DiurnalOptions &opts);

/** Flash crowd: flow count ramps to `peak`x base, holds, decays. */
struct FlashCrowdOptions
{
    TrafficProfile base;
    double peak = 8.0; ///< multiplier at the crest
    int ramp = 4;      ///< steps climbing to the peak
    int hold = 8;      ///< steps at the peak
    int decay = 4;     ///< steps back down to base
    int repeats = 1;
};
std::vector<SynthStep> flashCrowdSteps(const FlashCrowdOptions &opts);

/** Flow-churn ramp: flow count sweeps linearly fromFlows -> toFlows
 *  across `steps` points (a NAT/LB flow-table thrash pattern). */
struct FlowChurnOptions
{
    TrafficProfile base;
    double fromFlows = 4000.0;
    double toFlows = 256000.0;
    int steps = 16;
    int repeats = 1;
};
std::vector<SynthStep> flowChurnSteps(const FlowChurnOptions &opts);

/** MTBR spike: match-to-byte ratio ramps to `mtbr` (regex-heavy
 *  adversarial payloads), holds, ramps back to base. */
struct MtbrSpikeOptions
{
    TrafficProfile base;
    double mtbr = 1100.0; ///< matches/MB at the spike
    int ramp = 2;         ///< steps up (and again down)
    int hold = 8;         ///< steps at the spike
    int repeats = 1;
};
std::vector<SynthStep> mtbrSpikeSteps(const MtbrSpikeOptions &opts);

/** Stationary phase: `samples` samples at `base`. */
std::vector<SynthStep> steadySteps(const TrafficProfile &base,
                                   int samples);

/** The stress composite the CLI `replay` command runs by default:
 *  steady -> diurnal -> flash crowd -> MTBR spike -> steady. */
std::vector<SynthStep>
defaultComposite(const TrafficProfile &base);

// ---------------------------------------------------------------
// Scenario-script DSL
// ---------------------------------------------------------------

/**
 * Parse a scenario script. One directive per line, `key=value`
 * arguments in any order, '#' comments and blank lines ignored:
 *
 *   base flows=16000 size=1500 mtbr=600   # set the base profile
 *   steady n=40                           # n samples at base
 *   diurnal period=32 cycles=2 amplitude=0.5 [repeats=1]
 *   flash peak=8 ramp=4 hold=8 decay=4 [repeats=1]
 *   churn from=4000 to=256000 steps=16 [repeats=1]
 *   mtbr_spike mtbr=1100 ramp=2 hold=8 [repeats=1]
 *   step flows=F size=S mtbr=M [repeats=1]   # one literal step
 *
 * All-or-nothing: any unknown directive/key, non-numeric value, or
 * out-of-range argument rejects the whole script with a descriptive
 * Status. A script that emits no steps is an error.
 */
Result<std::vector<SynthStep>> parseScenario(std::istream &in);

/** Canonical lowered form: one `step` line per SynthStep. The output
 *  reparses to an equal step list (parse -> emit -> parse is the
 *  identity), which the DSL fuzz tests pin. */
std::string emitScenario(const std::vector<SynthStep> &steps);

} // namespace tomur::traffic

#endif // TOMUR_TRAFFIC_SYNTH_HH
