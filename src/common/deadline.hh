/**
 * @file
 * Cooperative deadlines / cancellation for long-running phases.
 *
 * A Deadline is a cancellation token checked at *task boundaries*
 * (between parallelFor iterations, between deployments in
 * Testbed::runBatch, between trainer phases). Work in flight when the
 * deadline trips always runs to completion, so a phase can overshoot
 * its budget by at most one task granule — but it can never hang on a
 * stuck solve, because every granule boundary is a cancellation point.
 *
 * Three modes:
 *  - wall-clock (`afterMillis`): for interactive CLI runs;
 *  - granule budget (`afterGranules`): every check() consumes one
 *    granule; deterministic, no clock reads, so tests and golden
 *    event streams can exercise deadline misses reproducibly;
 *  - manual (`never` + `cancel()`): an external watchdog flips the
 *    token.
 *
 * The current deadline propagates through the thread pool exactly
 * like the trace parent: `ScopedDeadline` installs a thread-local
 * pointer, `parallelFor` captures it at loop entry and re-installs it
 * inside posted jobs. The Deadline object itself is shared mutable
 * state (atomic trip flag / granule budget) and must outlive the
 * loops that observe it; stack allocation in the driving frame is the
 * intended pattern since parallelFor joins before returning.
 */

#ifndef TOMUR_COMMON_DEADLINE_HH
#define TOMUR_COMMON_DEADLINE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace tomur {

/** Thrown from cancellation points once the active deadline trips. */
class DeadlineExceeded : public std::runtime_error
{
  public:
    explicit DeadlineExceeded(const std::string &where)
        : std::runtime_error("deadline exceeded at " + where),
          where_(where)
    {
    }

    const std::string &where() const { return where_; }

  private:
    std::string where_;
};

class Deadline
{
  public:
    /** Token that never trips on its own (cancel() still works). */
    static Deadline never() { return Deadline(Mode::None); }

    /** Wall-clock deadline `ms` milliseconds from now. */
    static Deadline
    afterMillis(double ms)
    {
        return Deadline(Mode::WallClock, ms);
    }

    /**
     * Deterministic budget: the first `n` check() calls pass, every
     * later one reports expiry. No clock involved.
     */
    static Deadline
    afterGranules(std::uint64_t n)
    {
        return Deadline(Mode::Granules, 0.0, n);
    }

    /** Manually trip the token (watchdog / external abort). */
    void cancel() { tripped_.store(true, std::memory_order_relaxed); }

    /**
     * Cancellation point. Consumes one granule in granule mode.
     * Returns true when the deadline has tripped; the first trip
     * increments `tomur_deadline_misses_total`.
     */
    bool check();

    /** Non-consuming peek: has the token already tripped? */
    bool
    expired() const
    {
        return tripped_.load(std::memory_order_relaxed);
    }

    /** check()s made so far (granule + wall-clock modes alike). */
    std::uint64_t
    checksMade() const
    {
        return checks_.load(std::memory_order_relaxed);
    }

  private:
    enum class Mode { None, WallClock, Granules };

    explicit Deadline(Mode mode, double ms = 0.0,
                      std::uint64_t granules = 0);

    void markTripped();

    Mode mode_;
    std::chrono::steady_clock::time_point wallDeadline_{};
    std::uint64_t budget_ = 0;
    std::atomic<std::uint64_t> checks_{0};
    std::atomic<bool> tripped_{false};
    std::atomic<bool> missCounted_{false};
};

/** Thread-local deadline observed by cancellation points (may be
 *  null). Installed via ScopedDeadline, propagated by parallelFor. */
Deadline *currentDeadline();

/** Install `d` as the current deadline; returns the previous one so
 *  callers can restore it (parallelFor job prologue/epilogue). */
Deadline *setCurrentDeadline(Deadline *d);

/** RAII installer for the calling thread's current deadline. */
class ScopedDeadline
{
  public:
    explicit ScopedDeadline(Deadline &d)
        : prev_(setCurrentDeadline(&d))
    {
    }

    ~ScopedDeadline() { setCurrentDeadline(prev_); }

    ScopedDeadline(const ScopedDeadline &) = delete;
    ScopedDeadline &operator=(const ScopedDeadline &) = delete;

  private:
    Deadline *prev_;
};

/**
 * Cancellation point: throw DeadlineExceeded(`where`) when the
 * current deadline (if any) has tripped. Cheap no-op otherwise.
 */
void checkDeadline(const char *where);

} // namespace tomur

#endif // TOMUR_COMMON_DEADLINE_HH
