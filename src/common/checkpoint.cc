#include "common/checkpoint.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"
#include "common/serial.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"

namespace fs = std::filesystem;

namespace tomur {

namespace {

constexpr const char *kMagic = "tomur_ckpt";
constexpr int kVersion = 1;
constexpr std::size_t kMaxBodyBytes = 64ULL * 1024 * 1024;

struct CheckpointMetrics
{
    Counter &writes =
        metrics().counter("tomur_checkpoint_writes_total");
    Counter &restores =
        metrics().counter("tomur_checkpoint_restores_total");
    Counter &corruptSkipped =
        metrics().counter("tomur_checkpoint_corrupt_skipped_total");
    Counter &pruned =
        metrics().counter("tomur_checkpoint_pruned_total");
};

CheckpointMetrics &
checkpointMetrics()
{
    static CheckpointMetrics cm;
    return cm;
}

std::string
checksumHex(std::uint64_t h)
{
    std::ostringstream out;
    out << std::hex << std::setw(16) << std::setfill('0') << h;
    return out.str();
}

/** fsync a path (file or directory); best-effort, reports failure. */
bool
syncPath(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

/** Parse `ckpt-<digits>.tomur` -> generation; 0 when not a record. */
std::uint64_t
generationOf(const std::string &filename)
{
    const std::string prefix = "ckpt-";
    const std::string suffix = ".tomur";
    if (filename.size() <= prefix.size() + suffix.size())
        return 0;
    if (filename.compare(0, prefix.size(), prefix) != 0)
        return 0;
    if (filename.compare(filename.size() - suffix.size(),
                         suffix.size(), suffix) != 0)
        return 0;
    std::string digits = filename.substr(
        prefix.size(),
        filename.size() - prefix.size() - suffix.size());
    if (digits.empty())
        return 0;
    std::uint64_t gen = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return 0;
        gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return gen;
}

} // namespace

CheckpointStore::CheckpointStore(std::string dir,
                                 CheckpointOptions opts)
    : dir_(std::move(dir)), opts_(opts)
{
    auto gens = listGenerations();
    nextGen_ = gens.empty() ? 1 : gens.back() + 1;
}

std::string
CheckpointStore::generationPath(std::uint64_t gen) const
{
    std::ostringstream name;
    name << "ckpt-" << std::setw(8) << std::setfill('0') << gen
         << ".tomur";
    return (fs::path(dir_) / name.str()).string();
}

void
CheckpointStore::crash(CheckpointCrashPoint p) const
{
    if (opts_.crashPoint != p)
        return;
    const char *where = "?";
    switch (p) {
    case CheckpointCrashPoint::BeforeTempWrite:
        where = "checkpoint.before-temp-write";
        break;
    case CheckpointCrashPoint::MidTempWrite:
        where = "checkpoint.mid-temp-write";
        break;
    case CheckpointCrashPoint::BeforeRename:
        where = "checkpoint.before-rename";
        break;
    case CheckpointCrashPoint::BeforePrune:
        where = "checkpoint.before-prune";
        break;
    case CheckpointCrashPoint::None:
        break;
    }
    throw SimulatedCrash(where);
}

std::string
CheckpointStore::frame(const std::string &body)
{
    std::ostringstream out;
    out << kMagic << ' ' << kVersion << ' ' << body.size() << ' '
        << checksumHex(fnv1a64(body)) << '\n'
        << body;
    return out.str();
}

Status
CheckpointStore::verifyFrame(const std::string &framed,
                             std::string *body)
{
    std::size_t nl = framed.find('\n');
    if (nl == std::string::npos)
        return Status::corruptData("checkpoint header truncated");
    std::istringstream header(framed.substr(0, nl));
    std::string magic;
    int version = 0;
    std::size_t bytes = 0;
    std::string checksum;
    header >> magic >> version >> bytes >> checksum;
    if (!header || magic != kMagic)
        return Status::corruptData(
            "checkpoint header malformed (bad magic)");
    if (version != kVersion)
        return Status::corruptData(
            "unsupported checkpoint version " +
            std::to_string(version));
    if (bytes > kMaxBodyBytes)
        return Status::corruptData(
            "checkpoint body size " + std::to_string(bytes) +
            " exceeds limit");
    std::string rest = framed.substr(nl + 1);
    if (rest.size() != bytes)
        return Status::corruptData(
            "checkpoint body truncated: header says " +
            std::to_string(bytes) + " bytes, found " +
            std::to_string(rest.size()));
    if (checksumHex(fnv1a64(rest)) != checksum)
        return Status::corruptData(
            "checkpoint checksum mismatch");
    if (body != nullptr)
        *body = std::move(rest);
    return Status::ok();
}

Status
CheckpointStore::writeGeneration(const std::string &body)
{
    TraceSpan span("checkpoint.write");
    std::uint64_t gen = nextGen_;
    span.field("generation", static_cast<double>(gen));

    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        return Status::ioError("cannot create checkpoint dir " +
                               dir_ + ": " + ec.message());

    crash(CheckpointCrashPoint::BeforeTempWrite);

    std::string framed = frame(body);
    std::string finalPath = generationPath(gen);
    std::string tmpPath = finalPath + ".tmp";
    {
        std::ofstream out(tmpPath,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            return Status::ioError("cannot open " + tmpPath +
                                   " for writing");
        if (opts_.crashPoint == CheckpointCrashPoint::MidTempWrite) {
            // A real crash mid-write leaves a prefix of the record.
            out.write(framed.data(),
                      static_cast<std::streamsize>(framed.size() / 2));
            out.flush();
            crash(CheckpointCrashPoint::MidTempWrite);
        }
        out.write(framed.data(),
                  static_cast<std::streamsize>(framed.size()));
        out.flush();
        if (!out)
            return Status::ioError("short write to " + tmpPath);
    }
    if (opts_.fsync && !syncPath(tmpPath))
        return Status::ioError("fsync failed for " + tmpPath);

    crash(CheckpointCrashPoint::BeforeRename);

    fs::rename(tmpPath, finalPath, ec);
    if (ec)
        return Status::ioError("rename " + tmpPath + " -> " +
                               finalPath + ": " + ec.message());
    if (opts_.fsync)
        syncPath(dir_); // durability of the rename itself

    nextGen_ = gen + 1;
    checkpointMetrics().writes.inc();

    crash(CheckpointCrashPoint::BeforePrune);
    pruneOldGenerations();
    return Status::ok();
}

void
CheckpointStore::pruneOldGenerations()
{
    if (opts_.generations == 0)
        return;
    auto gens = listGenerations();
    if (gens.size() <= opts_.generations)
        return;
    std::size_t drop = gens.size() - opts_.generations;
    for (std::size_t i = 0; i < drop; ++i) {
        std::error_code ec;
        fs::remove(generationPath(gens[i]), ec);
        if (!ec)
            checkpointMetrics().pruned.inc();
    }
}

std::vector<std::uint64_t>
CheckpointStore::listGenerations() const
{
    std::vector<std::uint64_t> gens;
    std::error_code ec;
    fs::directory_iterator it(dir_, ec);
    if (ec)
        return gens;
    for (const auto &entry : it) {
        std::uint64_t gen = generationOf(
            entry.path().filename().string());
        if (gen != 0)
            gens.push_back(gen);
    }
    std::sort(gens.begin(), gens.end());
    return gens;
}

Result<CheckpointRecord>
CheckpointStore::loadLatestValid() const
{
    TraceSpan span("checkpoint.restore");
    auto gens = listGenerations();
    if (gens.empty())
        return Status::notFound("no checkpoint generations in " +
                                dir_);
    std::size_t skipped = 0;
    for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
        std::string path = generationPath(*it);
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            ++skipped;
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        CheckpointRecord rec;
        rec.generation = *it;
        Status ok = verifyFrame(buf.str(), &rec.body);
        if (ok.isOk()) {
            span.field("generation", static_cast<double>(*it));
            span.field("skipped", static_cast<double>(skipped));
            checkpointMetrics().restores.inc();
            if (skipped > 0)
                warnEvent(
                    "checkpoint", "stale-generation-restore",
                    {{"dir", dir_},
                     {"generation", std::to_string(*it)},
                     {"skipped", std::to_string(skipped)}});
            return rec;
        }
        ++skipped;
        checkpointMetrics().corruptSkipped.inc();
        warnEvent("checkpoint", "corrupt-generation-skipped",
                  {{"file", path}, {"error", ok.message()}});
    }
    return Status::corruptData(
        "all " + std::to_string(gens.size()) +
        " checkpoint generations in " + dir_ +
        " failed verification");
}

} // namespace tomur
