/**
 * @file
 * Span-based tracing for the profiling -> training -> prediction
 * pipeline.
 *
 * A `TraceSpan` is an RAII scope: construction opens the span (it
 * becomes the calling thread's current span), destruction records it
 * into the tracer's bounded ring buffer with its parent linkage,
 * monotonic start/duration timestamps, and any fields attached along
 * the way. `tracePoint()` records a lightweight instant event (e.g.
 * one solver iteration with its residual) under the current span.
 * Everything is a no-op while the tracer is disabled — the hot paths
 * pay one relaxed atomic load.
 *
 * Parent linkage crosses the thread pool: `parallelFor` captures the
 * caller's current span and installs it as the inherited parent for
 * every loop iteration, so a solve fanned out by `prewarm` still
 * nests under the `sim.prewarm` span that requested it.
 *
 * Two export modes:
 *  - exportJsonl(): JSON-lines in recording order, wall-clock
 *    timestamps included — the CLI's `--trace-out` format.
 *  - canonical export (ExportOptions::canonical): the span tree is
 *    rebuilt, siblings are sorted by their serialized subtree, span
 *    ids are renumbered depth-first, and timestamps are omitted.
 *    Spans carry logical step indices (solver iteration, GBR round)
 *    rather than wall-clock-only data, so a noise-free fixed-seed
 *    run exports byte-identically at any TOMUR_THREADS — the
 *    golden-trace tests diff exactly this.
 */

#ifndef TOMUR_COMMON_TRACE_HH
#define TOMUR_COMMON_TRACE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace tomur {

/** One key/value attribute (values are pre-formatted strings). */
struct TraceField
{
    std::string key;
    std::string value;
};

/** A finished span or an instant point event in the ring buffer. */
struct TraceRecord
{
    bool isSpan = true;
    std::uint64_t id = 0;     ///< span id (0 for points)
    std::uint64_t parent = 0; ///< enclosing span id (0 = root)
    std::string name;
    std::int64_t step = -1; ///< logical step index (-1 unset)
    std::vector<TraceField> fields;
    std::uint64_t startNs = 0; ///< monotonic (spans only)
    std::uint64_t durNs = 0;   ///< duration (spans only)
};

/** Export settings. */
struct TraceExportOptions
{
    /** Sort siblings, renumber ids depth-first, omit timestamps —
     *  deterministic for deterministic workloads (golden tests). */
    bool canonical = false;
};

/** Bounded-ring span recorder; see file header. */
class Tracer
{
  public:
    /** Registers tomur_trace_dropped_total eagerly, so the drop
     *  counter shows up (at zero) in every metrics dump instead of
     *  appearing only after the first overflow. */
    Tracer();

    /** Start recording (clears the buffer). */
    void enable(std::size_t capacity = 1 << 16);
    void disable();
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void clear();

    /** Records kept (spans + points); drops happen past capacity. */
    std::size_t recordCount() const;
    std::size_t droppedCount() const;

    /** Copy of the buffer, in recording order. */
    std::vector<TraceRecord> snapshot() const;

    /** The calling thread's current (innermost open) span id. */
    std::uint64_t currentSpan() const;

    /**
     * Install the parent adopted by spans opened while the calling
     * thread has no open span of its own (pool tasks). Returns the
     * previous value so callers can restore it.
     */
    std::uint64_t setInheritedParent(std::uint64_t id);

    void exportJsonl(std::ostream &out,
                     const TraceExportOptions &opts = {}) const;
    std::string
    exportString(const TraceExportOptions &opts = {}) const;

  private:
    friend class TraceSpan;
    friend void tracePoint(const char *,
                           std::vector<TraceField>,
                           std::int64_t);

    std::uint64_t openSpan();          ///< 0 when disabled
    void closeSpan(TraceRecord rec);   ///< pops + records
    void record(TraceRecord rec);

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> nextId_{1};
    mutable std::mutex mutex_;
    std::vector<TraceRecord> records_;
    std::size_t capacity_ = 1 << 16;
    std::size_t dropped_ = 0;
};

/** The process-wide tracer. */
Tracer &tracer();

/**
 * RAII span. Cheap when tracing is disabled (`active()` false: all
 * methods are no-ops and nothing is recorded).
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    bool active() const { return rec_.id != 0; }

    /** Attach an attribute (formatted deterministically). */
    void field(const char *key, const std::string &value);
    void field(const char *key, double value);
    void field(const char *key, std::uint64_t value);
    void field(const char *key, std::int64_t value);

    /** Set the span's logical step index. */
    void step(std::int64_t s);

  private:
    TraceRecord rec_;
};

/**
 * Record an instant event under the calling thread's current span.
 * @param step logical step index (iteration/round number)
 */
void tracePoint(const char *name,
                std::vector<TraceField> fields = {},
                std::int64_t step = -1);

/** Deterministic double formatting shared by trace fields. */
std::string traceFormat(double v);

} // namespace tomur

#endif // TOMUR_COMMON_TRACE_HH
