/**
 * @file
 * Shared text-serialization primitives.
 *
 * Every persistent artifact in the repo (trained models, checkpoint
 * generations, monitor/supervisor state) uses the same line-oriented
 * discipline: magic tokens, max_digits10 doubles so reloads are
 * bit-identical, and FNV-1a 64 checksums over framed bodies. These
 * helpers used to be duplicated per serializer (ml/serialize.cc,
 * tomur/serialize.cc, sim/measurement_cache.cc); they live here so
 * the checkpoint store and the model format can never drift apart.
 */

#ifndef TOMUR_COMMON_SERIAL_HH
#define TOMUR_COMMON_SERIAL_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace tomur {

/** FNV-1a 64-bit over a byte string (checksums, key digests). */
std::uint64_t fnv1a64(std::string_view bytes);

/** Write a double with max_digits10 so a reload is bit-identical. */
void writeSerialDouble(std::ostream &out, double v);

/** Consume one whitespace-delimited token and require it to equal
 *  `token`; false on mismatch or stream failure. */
bool expectToken(std::istream &in, const char *token);

} // namespace tomur

#endif // TOMUR_COMMON_SERIAL_HH
