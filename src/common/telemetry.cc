#include "common/telemetry.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace tomur {

namespace {

/**
 * The calling thread's shard index. Threads take shards round-robin
 * on first touch, so up to Counter::numShards concurrent threads
 * never share a cache line; beyond that they wrap (still exact,
 * merely contended).
 */
int
myShard()
{
    static std::atomic<unsigned> next{0};
    thread_local int shard = static_cast<int>(
        next.fetch_add(1, std::memory_order_relaxed) %
        Counter::numShards);
    return shard;
}

/** Deterministic number formatting for dump diffs. */
std::string
fmtMetric(double v)
{
    return strf("%.9g", v);
}

} // namespace

// ---------------------------------------------------------------
// Counter
// ---------------------------------------------------------------

void
Counter::inc(std::uint64_t n)
{
    shards_[myShard()].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t
Counter::value() const
{
    std::uint64_t sum = 0;
    for (const auto &s : shards_)
        sum += s.v.load(std::memory_order_relaxed);
    return sum;
}

void
Counter::reset()
{
    for (auto &s : shards_)
        s.v.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------

void
Gauge::add(double d)
{
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
}

// ---------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        panic("Histogram: bucket bounds must be sorted");
    // One striped counter per finite bucket plus the +Inf bucket.
    for (std::size_t i = 0; i < bounds_.size() + 1; ++i)
        buckets_.push_back(std::make_unique<Counter>());
}

void
Histogram::observe(double v)
{
    std::size_t b = std::lower_bound(bounds_.begin(), bounds_.end(),
                                     v) -
                    bounds_.begin();
    buckets_[b]->inc();
    count_.inc();
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot s;
    s.bounds = bounds_;
    s.counts.reserve(buckets_.size());
    for (const auto &b : buckets_)
        s.counts.push_back(b->value());
    s.count = count_.value();
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b->reset();
    count_.reset();
    sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double>
Histogram::exponentialBounds(double start, double factor, int count)
{
    std::vector<double> b;
    double v = start;
    for (int i = 0; i < count; ++i) {
        b.push_back(v);
        v *= factor;
    }
    return b;
}

// ---------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (gauges_.count(name) || histograms_.count(name))
        panic(strf("metric '%s' registered with another type",
                   name.c_str()));
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(name, std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (counters_.count(name) || histograms_.count(name))
        panic(strf("metric '%s' registered with another type",
                   name.c_str()));
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (counters_.count(name) || gauges_.count(name))
        panic(strf("metric '%s' registered with another type",
                   name.c_str()));
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name, std::make_unique<Histogram>(bounds))
                 .first;
    } else if (it->second->snapshot().bounds != bounds) {
        panic(strf("histogram '%s' re-registered with a different "
                   "bucket layout",
                   name.c_str()));
    }
    return *it->second;
}

namespace {

bool
excluded(const std::string &name, const DumpOptions &opts)
{
    for (const auto &p : opts.excludePrefixes) {
        if (name.rfind(p, 0) == 0)
            return true;
    }
    return false;
}

} // namespace

void
MetricsRegistry::dump(std::ostream &out, const DumpOptions &opts)
    const
{
    // One sorted pass over all three families: std::map iteration is
    // already name-ordered and the families are merged by name so
    // the dump is stable regardless of registration order.
    std::lock_guard<std::mutex> lock(mutex_);
    struct Row
    {
        const std::string *name;
        int kind; // 0 counter, 1 gauge, 2 histogram
        const void *metric;
    };
    std::vector<Row> rows;
    for (const auto &[name, m] : counters_)
        rows.push_back({&name, 0, m.get()});
    for (const auto &[name, m] : gauges_)
        rows.push_back({&name, 1, m.get()});
    for (const auto &[name, m] : histograms_)
        rows.push_back({&name, 2, m.get()});
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return *a.name < *b.name;
              });

    for (const Row &r : rows) {
        if (excluded(*r.name, opts))
            continue;
        const std::string &n = *r.name;
        if (r.kind == 0) {
            const auto *c = static_cast<const Counter *>(r.metric);
            out << "# TYPE " << n << " counter\n"
                << n << " " << c->value() << "\n";
        } else if (r.kind == 1) {
            const auto *g = static_cast<const Gauge *>(r.metric);
            out << "# TYPE " << n << " gauge\n"
                << n << " " << fmtMetric(g->value()) << "\n";
        } else {
            const auto *h = static_cast<const Histogram *>(r.metric);
            auto s = h->snapshot();
            out << "# TYPE " << n << " histogram\n";
            std::uint64_t cum = 0;
            for (std::size_t i = 0; i < s.bounds.size(); ++i) {
                cum += s.counts[i];
                out << n << "_bucket{le=\""
                    << fmtMetric(s.bounds[i]) << "\"} " << cum
                    << "\n";
            }
            cum += s.counts.back();
            out << n << "_bucket{le=\"+Inf\"} " << cum << "\n";
            out << n << "_sum " << fmtMetric(s.sum) << "\n";
            out << n << "_count " << s.count << "\n";
        }
    }
}

std::string
MetricsRegistry::dumpString(const DumpOptions &opts) const
{
    std::ostringstream ss;
    dump(ss, opts);
    return ss.str();
}

void
MetricsRegistry::dumpJson(std::ostream &out,
                          const DumpOptions &opts) const
{
    // Same merged-and-sorted walk as dump(), JSON framing.
    std::lock_guard<std::mutex> lock(mutex_);
    struct Row
    {
        const std::string *name;
        int kind; // 0 counter, 1 gauge, 2 histogram
        const void *metric;
    };
    std::vector<Row> rows;
    for (const auto &[name, m] : counters_)
        rows.push_back({&name, 0, m.get()});
    for (const auto &[name, m] : gauges_)
        rows.push_back({&name, 1, m.get()});
    for (const auto &[name, m] : histograms_)
        rows.push_back({&name, 2, m.get()});
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return *a.name < *b.name;
              });

    out << "{";
    bool first = true;
    for (const Row &r : rows) {
        if (excluded(*r.name, opts))
            continue;
        if (!first)
            out << ",";
        first = false;
        out << "\"" << *r.name << "\":";
        if (r.kind == 0) {
            out << static_cast<const Counter *>(r.metric)->value();
        } else if (r.kind == 1) {
            out << fmtMetric(
                static_cast<const Gauge *>(r.metric)->value());
        } else {
            auto s = static_cast<const Histogram *>(r.metric)
                         ->snapshot();
            out << "{\"count\":" << s.count
                << ",\"sum\":" << fmtMetric(s.sum)
                << ",\"buckets\":[";
            std::uint64_t cum = 0;
            for (std::size_t i = 0; i < s.bounds.size(); ++i) {
                cum += s.counts[i];
                out << "{\"le\":" << fmtMetric(s.bounds[i])
                    << ",\"cum\":" << cum << "},";
            }
            cum += s.counts.back();
            out << "{\"le\":\"+Inf\",\"cum\":" << cum << "}]}";
        }
    }
    out << "}";
}

std::string
MetricsRegistry::dumpJsonString(const DumpOptions &opts) const
{
    std::ostringstream ss;
    dumpJson(ss, opts);
    return ss.str();
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, m] : counters_)
        m->reset();
    for (auto &[name, m] : gauges_)
        m->reset();
    for (auto &[name, m] : histograms_)
        m->reset();
}

MetricsRegistry &
metrics()
{
    // Intentionally leaked: the global thread pool's workers update
    // metrics (queue-depth gauge) until process teardown, so a
    // static's atexit destructor would race them. A process-lifetime
    // registry has nothing to clean up anyway.
    static MetricsRegistry *registry = new MetricsRegistry;
    return *registry;
}

void
dumpMetrics(std::ostream &out, const DumpOptions &opts)
{
    metrics().dump(out, opts);
}

} // namespace tomur
