#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace tomur {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        panic("AsciiTable::addRow: arity mismatch");
    rows_.push_back(std::move(row));
}

std::string
AsciiTable::toString() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line = "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += " " + row[c];
            line.append(widths[c] - row[c].size() + 1, ' ');
            line += "|";
        }
        return line + "\n";
    };

    std::string sep = "+";
    for (std::size_t w : widths) {
        sep.append(w + 2, '-');
        sep += "+";
    }
    sep += "\n";

    std::string out = sep + renderRow(header_) + sep;
    for (const auto &row : rows_)
        out += renderRow(row);
    out += sep;
    return out;
}

void
AsciiTable::print(std::FILE *out) const
{
    std::string s = toString();
    std::fwrite(s.data(), 1, s.size(), out);
}

} // namespace tomur
