/**
 * @file
 * ASCII table printer used by the benchmark harnesses to emit
 * paper-style result tables.
 */

#ifndef TOMUR_COMMON_TABLE_HH
#define TOMUR_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace tomur {

/**
 * Accumulates rows of string cells and renders an aligned ASCII table.
 *
 * Usage:
 * @code
 *   AsciiTable t({"NF", "MAPE (%)"});
 *   t.addRow({"NIDS", "1.5"});
 *   t.print(stdout);
 * @endcode
 */
class AsciiTable
{
  public:
    /** Construct with a header row. */
    explicit AsciiTable(std::vector<std::string> header);

    /** Append one data row (must match header arity). */
    void addRow(std::vector<std::string> row);

    /** Render to the given stream. */
    void print(std::FILE *out) const;

    /** Render to a string. */
    std::string toString() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tomur

#endif // TOMUR_COMMON_TABLE_HH
