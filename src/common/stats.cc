#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tomur {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / xs.size();
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / (xs.size() - 1));
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        panic("percentile: p out of range");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * (xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - lo;
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double
median(const std::vector<double> &xs)
{
    return percentile(xs, 50.0);
}

double
mad(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double m = median(xs);
    std::vector<double> dev(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        dev[i] = std::fabs(xs[i] - m);
    return median(dev);
}

double
minOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

BoxStats
BoxStats::from(const std::vector<double> &xs)
{
    BoxStats b;
    b.p5 = percentile(xs, 5.0);
    b.p25 = percentile(xs, 25.0);
    b.p50 = percentile(xs, 50.0);
    b.p75 = percentile(xs, 75.0);
    b.p95 = percentile(xs, 95.0);
    return b;
}

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++n_;
}

} // namespace tomur
