/**
 * @file
 * Small string formatting helpers (gcc 12 lacks std::format).
 */

#ifndef TOMUR_COMMON_STRUTIL_HH
#define TOMUR_COMMON_STRUTIL_HH

#include <cstdarg>
#include <string>
#include <vector>

namespace tomur {

/** printf-style formatting into a std::string. */
std::string strf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split on a delimiter character (keeps empty fields). */
std::vector<std::string> split(const std::string &s, char delim);

/** Join with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Format a double with the given number of decimals. */
std::string fmtDouble(double v, int decimals = 1);

/** Minimal JSON string escaping (quotes, backslash, control). */
std::string jsonEscape(const std::string &s);

} // namespace tomur

#endif // TOMUR_COMMON_STRUTIL_HH
