#include "common/slo.hh"

#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"

namespace tomur {

namespace {

const char *
eventName(SloEventKind kind)
{
    return kind == SloEventKind::Burn ? "SLO_BURN"
                                      : "SLO_RECOVERED";
}

bool
metricSafe(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') ||
                  (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

std::string
SloEvent::toJson() const
{
    return strf("{\"event\":\"%s\",\"objective\":\"%s\","
                "\"sample\":%llu,\"fast_burn\":\"%s\","
                "\"slow_burn\":\"%s\","
                "\"budget_remaining\":\"%s\"}",
                eventName(kind), jsonEscape(objective).c_str(),
                (unsigned long long)sample,
                traceFormat(fastBurn).c_str(),
                traceFormat(slowBurn).c_str(),
                traceFormat(budgetRemaining).c_str());
}

SloTracker::SloTracker(std::vector<SloObjective> objectives)
{
    objs_.reserve(objectives.size());
    for (auto &obj : objectives) {
        if (!metricSafe(obj.name)) {
            panic(strf("SLO objective name '%s' is not metric-safe "
                       "([a-z0-9_] only)",
                       obj.name.c_str()));
        }
        if (!(obj.target > 0.0 && obj.target < 1.0)) {
            panic(strf("SLO objective '%s': target %g is outside "
                       "(0, 1)",
                       obj.name.c_str(), obj.target));
        }
        if (obj.fastWindow < 1 || obj.fastWindow > obj.slowWindow) {
            panic(strf("SLO objective '%s': windows must satisfy "
                       "1 <= fast (%zu) <= slow (%zu)",
                       obj.name.c_str(), obj.fastWindow,
                       obj.slowWindow));
        }
        ObjectiveState os;
        os.obj = std::move(obj);
        os.ring.assign(os.obj.slowWindow, 0);
        const std::string prefix = "tomur_slo_" + os.obj.name;
        os.requestsMetric =
            &metrics().counter(prefix + "_requests_total");
        os.badMetric = &metrics().counter(prefix + "_bad_total");
        os.fastBurnMetric = &metrics().gauge(prefix + "_fast_burn");
        os.slowBurnMetric = &metrics().gauge(prefix + "_slow_burn");
        os.budgetMetric =
            &metrics().gauge(prefix + "_budget_remaining");
        os.burningMetric = &metrics().gauge(prefix + "_burning");
        // A fresh objective has its whole budget.
        os.budgetMetric->set(1.0);
        objs_.push_back(std::move(os));
    }
    burnEventsMetric_ =
        &metrics().counter("tomur_slo_burn_events_total");
    recoveredEventsMetric_ =
        &metrics().counter("tomur_slo_recovered_events_total");
}

bool
SloTracker::isBad(const SloObjective &obj, const SloOutcome &outcome)
{
    if (outcome.status >= 500)
        return true;
    if (obj.kind == SloKind::Latency) {
        if (outcome.deadlineMiss)
            return true;
        if (obj.latencyThresholdMs > 0.0 &&
            outcome.latencyMs > obj.latencyThresholdMs)
            return true;
    }
    return false;
}

double
SloTracker::ObjectiveState::fastBurnRate() const
{
    std::uint64_t n = std::min<std::uint64_t>(total, obj.fastWindow);
    if (n == 0)
        return 0.0;
    double frac =
        static_cast<double>(fastBad) / static_cast<double>(n);
    return frac / (1.0 - obj.target);
}

double
SloTracker::ObjectiveState::slowBurnRate() const
{
    std::uint64_t n = std::min<std::uint64_t>(total, obj.slowWindow);
    if (n == 0)
        return 0.0;
    double frac =
        static_cast<double>(slowBad) / static_cast<double>(n);
    return frac / (1.0 - obj.target);
}

std::vector<SloEvent>
SloTracker::ingest(const SloOutcome &outcome)
{
    std::vector<SloEvent> fired;
    for (auto &os : objs_) {
        if (!os.obj.pathFilter.empty() &&
            os.obj.pathFilter != outcome.path)
            continue;
        bool bad = isBad(os.obj, outcome);

        // Slide the verdict ring: the slot being overwritten leaves
        // the slow window; the slot fastWindow back leaves the fast
        // window. Both windows share one ring because fast <= slow.
        if (os.total >= os.obj.slowWindow)
            os.slowBad -= os.ring[os.head];
        if (os.total >= os.obj.fastWindow) {
            std::size_t leaving =
                (os.head + os.obj.slowWindow - os.obj.fastWindow) %
                os.obj.slowWindow;
            os.fastBad -= os.ring[leaving];
        }
        os.ring[os.head] = bad ? 1 : 0;
        os.head = (os.head + 1) % os.obj.slowWindow;
        ++os.total;
        os.bad += bad ? 1 : 0;
        os.fastBad += bad ? 1 : 0;
        os.slowBad += bad ? 1 : 0;

        double fast = os.fastBurnRate();
        double slow = os.slowBurnRate();
        double budget = 1.0 - slow;

        os.requestsMetric->inc();
        if (bad)
            os.badMetric->inc();
        os.fastBurnMetric->set(fast);
        os.slowBurnMetric->set(slow);
        os.budgetMetric->set(budget);

        // Multi-window alert with hysteresis. The fast window must
        // be full before the first alert can fire: a lone bad first
        // request would otherwise read as burn = 1/(1-target).
        if (!os.burning) {
            if (os.total >= os.obj.fastWindow &&
                fast >= os.obj.burnThreshold &&
                slow >= os.obj.burnThreshold) {
                os.burning = true;
                os.stableBelow = 0;
                ++os.burnEvents;
                burnEventsMetric_->inc();
                SloEvent ev;
                ev.kind = SloEventKind::Burn;
                ev.objective = os.obj.name;
                ev.sample = os.total;
                ev.fastBurn = fast;
                ev.slowBurn = slow;
                ev.budgetRemaining = budget;
                fired.push_back(ev);
            }
        } else {
            if (fast <
                os.obj.recoverFactor * os.obj.burnThreshold) {
                if (++os.stableBelow >= os.obj.recoverStable) {
                    os.burning = false;
                    os.stableBelow = 0;
                    ++os.recoveredEvents;
                    recoveredEventsMetric_->inc();
                    SloEvent ev;
                    ev.kind = SloEventKind::Recovered;
                    ev.objective = os.obj.name;
                    ev.sample = os.total;
                    ev.fastBurn = fast;
                    ev.slowBurn = slow;
                    ev.budgetRemaining = budget;
                    fired.push_back(ev);
                }
            } else {
                os.stableBelow = 0;
            }
        }
        os.burningMetric->set(os.burning ? 1.0 : 0.0);
    }
    for (const auto &ev : fired) {
        if (events_.size() >= kMaxEvents) {
            events_.erase(events_.begin());
            ++eventsDropped_;
        }
        events_.push_back(ev);
    }
    return fired;
}

void
SloTracker::fillState(const ObjectiveState &os, SloState &out) const
{
    out.name = os.obj.name;
    out.kind = os.obj.kind;
    out.target = os.obj.target;
    out.total = os.total;
    out.bad = os.bad;
    out.fastBurn = os.fastBurnRate();
    out.slowBurn = os.slowBurnRate();
    out.budgetRemaining = 1.0 - out.slowBurn;
    out.burning = os.burning;
    out.burnEvents = os.burnEvents;
    out.recoveredEvents = os.recoveredEvents;
}

std::vector<SloState>
SloTracker::states() const
{
    std::vector<SloState> out(objs_.size());
    for (std::size_t i = 0; i < objs_.size(); ++i)
        fillState(objs_[i], out[i]);
    return out;
}

void
SloTracker::exportJsonl(std::ostream &out) const
{
    for (const auto &ev : events_)
        out << ev.toJson() << "\n";
    out << "{\"slo_summary\":{\"objectives\":[";
    bool first = true;
    for (const auto &os : objs_) {
        SloState st;
        fillState(os, st);
        if (!first)
            out << ",";
        first = false;
        out << strf(
            "{\"name\":\"%s\",\"kind\":\"%s\","
            "\"target\":\"%s\",\"total\":%llu,\"bad\":%llu,"
            "\"fast_burn\":\"%s\",\"slow_burn\":\"%s\","
            "\"budget_remaining\":\"%s\",\"burning\":%s,"
            "\"burn_events\":%llu,\"recovered_events\":%llu}",
            jsonEscape(st.name).c_str(),
            st.kind == SloKind::Availability ? "availability"
                                             : "latency",
            traceFormat(st.target).c_str(),
            (unsigned long long)st.total,
            (unsigned long long)st.bad,
            traceFormat(st.fastBurn).c_str(),
            traceFormat(st.slowBurn).c_str(),
            traceFormat(st.budgetRemaining).c_str(),
            st.burning ? "true" : "false",
            (unsigned long long)st.burnEvents,
            (unsigned long long)st.recoveredEvents);
    }
    out << strf("],\"events\":%zu,\"events_dropped\":%llu}}\n",
                events_.size(),
                (unsigned long long)eventsDropped_);
}

std::string
SloTracker::exportString() const
{
    std::ostringstream ss;
    exportJsonl(ss);
    return ss.str();
}

} // namespace tomur
