#include "common/report.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/strutil.hh"

namespace tomur {

namespace {

/** Monitor wire names, in MonitorEventKind order. Kept as literals:
 *  common/ sits below tomur/ in the layering, so the renderer parses
 *  the serialized stream rather than including the monitor header. */
const char *const kEventNames[5] = {
    "DRIFT_DETECTED",
    "ACCURACY_DEGRADED",
    "TRAFFIC_SHIFT",
    "RECALIBRATION_RECOMMENDED",
    "ACCURACY_RECOVERED",
};

/** Supervisor wire names, in SupervisorEventKind order (same
 *  layering note as above). */
const char *const kSupervisorEventNames[9] = {
    "RECALIBRATION_STARTED",
    "RECALIBRATION_SUCCEEDED",
    "RECALIBRATION_FAILED",
    "BREAKER_OPENED",
    "BREAKER_HALF_OPEN",
    "BREAKER_CLOSED",
    "DEADLINE_MISSED",
    "RETRY_BUDGET_EXHAUSTED",
    "CHECKPOINT_WRITTEN",
};

/** Most recent raw event lines kept in the digest. */
constexpr std::size_t kLastEvents = 8;

} // namespace

const char *const kVerdictNames[7] = {
    "ok", "shed", "throttled", "deadline",
    "error", "parse", "dropped",
};

namespace {

/** Extract the string value of "key" from a flat JSON line. */
std::string
jsonField(const std::string &line, const std::string &key)
{
    std::string tag = "\"" + key + "\":\"";
    auto pos = line.find(tag);
    if (pos == std::string::npos)
        return "";
    pos += tag.size();
    std::string out;
    while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\' && pos + 1 < line.size())
            ++pos; // keep the escaped char, drop the backslash
        out.push_back(line[pos]);
        ++pos;
    }
    return out;
}

/** Extract the numeric value of "key" from a flat JSON line. */
double
jsonNumber(const std::string &line, const std::string &key,
           double fallback = 0.0)
{
    std::string tag = "\"" + key + "\":";
    auto pos = line.find(tag);
    if (pos == std::string::npos)
        return fallback;
    return std::strtod(line.c_str() + pos + tag.size(), nullptr);
}

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&':
            out += "&amp;";
            break;
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          case '"':
            out += "&quot;";
            break;
          default:
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

std::vector<MetricSample>
parseMetricsText(const std::string &body)
{
    std::vector<MetricSample> out;
    std::istringstream in(body);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        // Histogram bucket series would swamp the table; the _sum
        // and _count series carry the aggregate.
        if (line.find("_bucket{") != std::string::npos)
            continue;
        auto space = line.rfind(' ');
        if (space == std::string::npos || space == 0)
            continue;
        MetricSample s;
        s.name = line.substr(0, space);
        s.value = std::strtod(line.c_str() + space + 1, nullptr);
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<TraceNameStats>
parseTraceJsonl(const std::string &body)
{
    std::map<std::string, TraceNameStats> by_name;
    std::istringstream in(body);
    std::string line;
    while (std::getline(in, line)) {
        std::string name = jsonField(line, "name");
        if (name.empty())
            continue;
        auto &st = by_name[name];
        st.name = name;
        ++st.count;
        st.totalDurNs += static_cast<std::uint64_t>(
            jsonNumber(line, "dur_ns"));
    }
    std::vector<TraceNameStats> out;
    out.reserve(by_name.size());
    for (auto &kv : by_name)
        out.push_back(std::move(kv.second));
    std::sort(out.begin(), out.end(),
              [](const TraceNameStats &a, const TraceNameStats &b) {
                  if (a.totalDurNs != b.totalDurNs)
                      return a.totalDurNs > b.totalDurNs;
                  return a.name < b.name;
              });
    return out;
}

MonitorDigest
parseMonitorJsonl(const std::string &body)
{
    MonitorDigest d;
    std::istringstream in(body);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("{\"summary\":") == 0) {
            d.summaryLine = line;
            if (line.find("\"recovery\":{") != std::string::npos) {
                d.hasRecovery = true;
                d.recoveryCount = jsonNumber(line, "count");
                d.recoveryMeanSamples = std::strtod(
                    jsonField(line, "mean").c_str(), nullptr);
                d.recoveryMaxSamples = jsonNumber(line, "max");
                d.recoveryOpen = jsonNumber(line, "open") != 0.0;
            }
            continue;
        }
        if (line.find("{\"supervisor_summary\":") == 0) {
            d.hasSupervisor = true;
            d.supervisorSummaryLine = line;
            d.deadlineMisses =
                jsonNumber(line, "deadline_misses");
            continue;
        }
        std::string sup = jsonField(line, "supervisor_event");
        if (!sup.empty()) {
            d.hasSupervisor = true;
            for (int k = 0; k < 9; ++k) {
                if (sup == kSupervisorEventNames[k]) {
                    ++d.supervisorEventCounts[k];
                    break;
                }
            }
            d.lastEvents.push_back(line);
            if (d.lastEvents.size() > kLastEvents)
                d.lastEvents.erase(d.lastEvents.begin());
            continue;
        }
        std::string kind = jsonField(line, "event");
        if (kind.empty())
            continue;
        for (int k = 0; k < 5; ++k) {
            if (kind == kEventNames[k]) {
                ++d.eventCounts[k];
                break;
            }
        }
        d.lastEvents.push_back(line);
        if (d.lastEvents.size() > kLastEvents)
            d.lastEvents.erase(d.lastEvents.begin());
    }
    return d;
}

SloDigest
parseSloJsonl(const std::string &body)
{
    SloDigest d;
    std::istringstream in(body);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("{\"slo_summary\":") == 0) {
            d.hasSummary = true;
            d.eventsDropped = jsonNumber(line, "events_dropped");
            // The objectives array is a nested list on one line;
            // carve it out and digest each {...} element with the
            // flat-field helpers (every field inside is scalar).
            std::string open = "\"objectives\":[";
            auto start = line.find(open);
            if (start == std::string::npos)
                continue;
            start += open.size();
            auto end = line.find(']', start);
            if (end == std::string::npos)
                continue;
            std::string arr = line.substr(start, end - start);
            std::size_t pos = 0;
            while (pos < arr.size()) {
                auto close = arr.find('}', pos);
                if (close == std::string::npos)
                    break;
                std::string obj = arr.substr(pos, close + 1 - pos);
                SloObjectiveRow row;
                row.name = jsonField(obj, "name");
                row.kind = jsonField(obj, "kind");
                row.target = std::strtod(
                    jsonField(obj, "target").c_str(), nullptr);
                row.total = jsonNumber(obj, "total");
                row.bad = jsonNumber(obj, "bad");
                row.fastBurn = std::strtod(
                    jsonField(obj, "fast_burn").c_str(), nullptr);
                row.slowBurn = std::strtod(
                    jsonField(obj, "slow_burn").c_str(), nullptr);
                row.budgetRemaining = std::strtod(
                    jsonField(obj, "budget_remaining").c_str(),
                    nullptr);
                row.burning =
                    obj.find("\"burning\":true") != std::string::npos;
                row.burnEvents = jsonNumber(obj, "burn_events");
                row.recoveredEvents =
                    jsonNumber(obj, "recovered_events");
                if (!row.name.empty())
                    d.objectives.push_back(std::move(row));
                pos = close + 1;
                if (pos < arr.size() && arr[pos] == ',')
                    ++pos;
            }
            continue;
        }
        std::string kind = jsonField(line, "event");
        if (kind == "SLO_BURN")
            ++d.burnEvents;
        else if (kind == "SLO_RECOVERED")
            ++d.recoveredEvents;
        else
            continue;
        d.lastEvents.push_back(line);
        if (d.lastEvents.size() > kLastEvents)
            d.lastEvents.erase(d.lastEvents.begin());
    }
    return d;
}

AccessDigest
parseAccessJsonl(const std::string &body)
{
    AccessDigest d;
    std::istringstream in(body);
    std::string line;
    while (std::getline(in, line)) {
        std::string verdict = jsonField(line, "verdict");
        if (verdict.empty())
            continue;
        ++d.records;
        int status = static_cast<int>(jsonNumber(line, "status"));
        int cls = status / 100;
        d.statusClass[(cls >= 1 && cls <= 5) ? cls : 0] += 1;
        for (int k = 0; k < 7; ++k) {
            if (verdict == kVerdictNames[k]) {
                ++d.verdictCounts[k];
                break;
            }
        }
        if (line.find("\"deadline_miss\":true") != std::string::npos)
            ++d.deadlineMisses;
        d.totalHandleMs += jsonNumber(line, "handle_ms");
    }
    return d;
}

ChaosDigest
parseChaosJsonl(const std::string &body)
{
    ChaosDigest d;
    std::istringstream in(body);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"chaos_summary\"") != std::string::npos) {
            d.hasSummary = true;
            d.crashes = jsonNumber(line, "crashes");
            d.resumes = jsonNumber(line, "resumes");
            d.faultsInjected = jsonNumber(line, "faults_injected");
            d.determinismReruns =
                jsonNumber(line, "determinism_reruns");
            d.shrinkIterations =
                jsonNumber(line, "shrink_iterations");
            continue;
        }
        if (line.find("\"chaos_plan\"") == std::string::npos)
            continue;
        ++d.plans;
        auto violations = static_cast<std::size_t>(
            jsonNumber(line, "violations"));
        d.violations += violations;
        if (violations > 0) {
            ++d.violatingPlans;
            d.violatingLines.push_back(line);
            if (d.violatingLines.size() > kLastEvents)
                d.violatingLines.erase(d.violatingLines.begin());
        }
        // Walk the verdicts object: "name":"pass" / "name":"FAIL".
        std::string open = "\"verdicts\":{";
        auto start = line.find(open);
        if (start == std::string::npos)
            continue;
        start += open.size();
        auto end = line.find('}', start);
        if (end == std::string::npos)
            continue;
        std::string obj = line.substr(start, end - start);
        std::size_t pos = 0;
        while ((pos = obj.find('"', pos)) != std::string::npos) {
            auto nameEnd = obj.find('"', pos + 1);
            if (nameEnd == std::string::npos)
                break;
            std::string name = obj.substr(pos + 1,
                                          nameEnd - pos - 1);
            auto valStart = obj.find('"', nameEnd + 1);
            if (valStart == std::string::npos)
                break;
            auto valEnd = obj.find('"', valStart + 1);
            if (valEnd == std::string::npos)
                break;
            std::string val =
                obj.substr(valStart + 1, valEnd - valStart - 1);
            ChaosInvariantRow *row = nullptr;
            for (auto &r : d.invariants) {
                if (r.name == name) {
                    row = &r;
                    break;
                }
            }
            if (!row) {
                d.invariants.push_back({name, 0, 0});
                row = &d.invariants.back();
            }
            if (val == "pass")
                ++row->passes;
            else
                ++row->failures;
            pos = valEnd + 1;
        }
    }
    return d;
}

Result<std::string>
renderReport(const ReportArtifacts &artifacts,
             const ReportOptions &opts)
{
    if (artifacts.metricsText.empty() &&
        artifacts.traceJsonl.empty() &&
        artifacts.monitorJsonl.empty() &&
        artifacts.sloJsonl.empty() &&
        artifacts.accessJsonl.empty() &&
        artifacts.chaosJsonl.empty()) {
        return Status::invalidArgument(
            "no artifacts to render (metrics, trace, monitor, SLO, "
            "access, and chaos streams are all empty)");
    }

    auto metric_samples = parseMetricsText(artifacts.metricsText);
    auto trace_stats = parseTraceJsonl(artifacts.traceJsonl);
    auto monitor = parseMonitorJsonl(artifacts.monitorJsonl);
    auto slo = parseSloJsonl(artifacts.sloJsonl);
    auto access = parseAccessJsonl(artifacts.accessJsonl);
    auto chaos = parseChaosJsonl(artifacts.chaosJsonl);
    bool have_monitor = !artifacts.monitorJsonl.empty();
    bool have_slo = !artifacts.sloJsonl.empty();
    bool have_access = access.records > 0;
    bool have_chaos = chaos.plans > 0;

    std::string out;
    if (!opts.html) {
        out += "== " + opts.title + " ==\n";
        if (have_monitor) {
            out += "\n-- Monitor events --\n";
            for (int k = 0; k < 5; ++k) {
                out += strf("%-26s %zu\n", kEventNames[k],
                            monitor.eventCounts[k]);
            }
            if (monitor.hasRecovery) {
                out += "\n-- Recovery (regime change -> recovered "
                       "accuracy) --\n";
                out += strf("%-26s %.0f\n", "recoveries",
                            monitor.recoveryCount);
                out += strf("%-26s %.1f\n",
                            "mean recovery (samples)",
                            monitor.recoveryMeanSamples);
                out += strf("%-26s %.0f\n",
                            "max recovery (samples)",
                            monitor.recoveryMaxSamples);
                out += strf("%-26s %s\n", "open regime",
                            monitor.recoveryOpen ? "yes" : "no");
            }
            if (!monitor.lastEvents.empty()) {
                out += "recent events:\n";
                for (const auto &e : monitor.lastEvents)
                    out += "  " + e + "\n";
            }
            if (!monitor.summaryLine.empty())
                out += "summary: " + monitor.summaryLine + "\n";
        }
        if (monitor.hasSupervisor) {
            out += "\n-- Supervisor events --\n";
            for (int k = 0; k < 9; ++k) {
                out += strf("%-26s %zu\n", kSupervisorEventNames[k],
                            monitor.supervisorEventCounts[k]);
            }
            out += strf("deadline misses            %.0f\n",
                        monitor.deadlineMisses);
            if (!monitor.supervisorSummaryLine.empty()) {
                out += "supervisor summary: " +
                       monitor.supervisorSummaryLine + "\n";
            }
        }
        if (have_slo) {
            out += "\n-- SLO objectives --\n";
            out += strf("%-24s %-12s %8s %8s %6s %9s %9s %7s %s\n",
                        "name", "kind", "target", "total", "bad",
                        "fast", "slow", "budget", "state");
            for (const auto &o : slo.objectives) {
                out += strf(
                    "%-24s %-12s %8.4f %8.0f %6.0f %9.3f %9.3f "
                    "%7.3f %s\n",
                    o.name.c_str(), o.kind.c_str(), o.target,
                    o.total, o.bad, o.fastBurn, o.slowBurn,
                    o.budgetRemaining,
                    o.burning ? "BURNING" : "ok");
            }
            out += strf("%-26s %zu\n", "SLO_BURN",
                        slo.burnEvents);
            out += strf("%-26s %zu\n", "SLO_RECOVERED",
                        slo.recoveredEvents);
            if (slo.eventsDropped > 0) {
                out += strf("%-26s %.0f\n", "events dropped",
                            slo.eventsDropped);
            }
            if (!slo.lastEvents.empty()) {
                out += "recent slo events:\n";
                for (const auto &e : slo.lastEvents)
                    out += "  " + e + "\n";
            }
        }
        if (have_access) {
            out += strf("\n-- Access log (%zu records) --\n",
                        access.records);
            static const char *const cls[6] = {
                "no answer", "1xx", "2xx", "3xx", "4xx", "5xx"};
            for (int k = 0; k < 6; ++k) {
                if (access.statusClass[k] > 0)
                    out += strf("%-26s %zu\n", cls[k],
                                access.statusClass[k]);
            }
            std::string verdicts;
            for (int k = 0; k < 7; ++k) {
                if (access.verdictCounts[k] == 0)
                    continue;
                if (!verdicts.empty())
                    verdicts += " ";
                verdicts += strf("%s=%zu", kVerdictNames[k],
                                 access.verdictCounts[k]);
            }
            out += "verdicts: " + verdicts + "\n";
            out += strf("%-26s %zu\n", "deadline misses",
                        access.deadlineMisses);
            std::size_t answered = access.records -
                                   access.statusClass[0];
            if (answered > 0) {
                out += strf("%-26s %.3f\n", "mean handle ms",
                            access.totalHandleMs /
                                static_cast<double>(answered));
            }
        }
        if (have_chaos) {
            out += strf("\n-- Chaos campaign (%zu plans) --\n",
                        chaos.plans);
            out += strf("%-26s %10s %10s\n", "invariant", "pass",
                        "fail");
            for (const auto &r : chaos.invariants) {
                out += strf("%-26s %10zu %10zu\n", r.name.c_str(),
                            r.passes, r.failures);
            }
            out += strf("%-26s %zu (%zu plans)\n", "violations",
                        chaos.violations, chaos.violatingPlans);
            if (chaos.hasSummary) {
                out += strf("%-26s %.0f\n", "crashes injected",
                            chaos.crashes);
                out += strf("%-26s %.0f\n", "checkpoint resumes",
                            chaos.resumes);
                out += strf("%-26s %.0f\n", "faults injected",
                            chaos.faultsInjected);
                out += strf("%-26s %.0f\n", "determinism re-runs",
                            chaos.determinismReruns);
                out += strf("%-26s %.0f\n", "shrink iterations",
                            chaos.shrinkIterations);
            }
            if (!chaos.violatingLines.empty()) {
                out += "violating plans:\n";
                for (const auto &l : chaos.violatingLines)
                    out += "  " + l + "\n";
            }
        }
        if (!trace_stats.empty()) {
            out += strf("\n-- Trace spans (%zu names) --\n",
                        trace_stats.size());
            out += strf("%-40s %10s %12s\n", "name", "count",
                        "total ms");
            for (const auto &t : trace_stats) {
                out += strf("%-40s %10zu %12.3f\n", t.name.c_str(),
                            t.count,
                            static_cast<double>(t.totalDurNs) / 1e6);
            }
        }
        if (!metric_samples.empty()) {
            out += strf("\n-- Metrics (%zu series) --\n",
                        metric_samples.size());
            for (const auto &m : metric_samples)
                out += strf("%-56s %s\n", m.name.c_str(),
                            fmtDouble(m.value, 6).c_str());
        }
        return out;
    }

    // Self-contained HTML: inline style, no external assets.
    out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">";
    out += "<title>" + htmlEscape(opts.title) + "</title>\n";
    out += "<style>body{font-family:monospace;margin:2em;}"
           "table{border-collapse:collapse;margin-bottom:2em;}"
           "th,td{border:1px solid #999;padding:4px 8px;"
           "text-align:left;}th{background:#eee;}"
           "h2{border-bottom:2px solid #333;}</style></head><body>\n";
    out += "<h1>" + htmlEscape(opts.title) + "</h1>\n";
    if (have_monitor) {
        out += "<h2>Monitor events</h2>\n<table>"
               "<tr><th>kind</th><th>count</th></tr>\n";
        for (int k = 0; k < 5; ++k) {
            out += strf("<tr><td>%s</td><td>%zu</td></tr>\n",
                        kEventNames[k], monitor.eventCounts[k]);
        }
        out += "</table>\n";
        if (monitor.hasRecovery) {
            out += "<h2>Recovery</h2>\n<table>"
                   "<tr><th>recoveries</th>"
                   "<th>mean (samples)</th><th>max (samples)</th>"
                   "<th>open regime</th></tr>\n";
            out += strf("<tr><td>%.0f</td><td>%.1f</td>"
                        "<td>%.0f</td><td>%s</td></tr>\n",
                        monitor.recoveryCount,
                        monitor.recoveryMeanSamples,
                        monitor.recoveryMaxSamples,
                        monitor.recoveryOpen ? "yes" : "no");
            out += "</table>\n";
        }
        if (!monitor.lastEvents.empty()) {
            out += "<h2>Recent events</h2>\n<pre>";
            for (const auto &e : monitor.lastEvents)
                out += htmlEscape(e) + "\n";
            out += "</pre>\n";
        }
        if (!monitor.summaryLine.empty()) {
            out += "<h2>Summary</h2>\n<pre>" +
                   htmlEscape(monitor.summaryLine) + "</pre>\n";
        }
        if (monitor.hasSupervisor) {
            out += "<h2>Supervisor events</h2>\n<table>"
                   "<tr><th>kind</th><th>count</th></tr>\n";
            for (int k = 0; k < 9; ++k) {
                out += strf("<tr><td>%s</td><td>%zu</td></tr>\n",
                            kSupervisorEventNames[k],
                            monitor.supervisorEventCounts[k]);
            }
            out += strf("<tr><td>deadline misses</td>"
                        "<td>%.0f</td></tr>\n",
                        monitor.deadlineMisses);
            out += "</table>\n";
            if (!monitor.supervisorSummaryLine.empty()) {
                out += "<h2>Supervisor summary</h2>\n<pre>" +
                       htmlEscape(monitor.supervisorSummaryLine) +
                       "</pre>\n";
            }
        }
    }
    if (have_slo) {
        out += "<h2>SLO objectives</h2>\n<table>"
               "<tr><th>name</th><th>kind</th><th>target</th>"
               "<th>total</th><th>bad</th><th>fast burn</th>"
               "<th>slow burn</th><th>budget</th>"
               "<th>state</th></tr>\n";
        for (const auto &o : slo.objectives) {
            out += strf("<tr><td>%s</td><td>%s</td><td>%.4f</td>"
                        "<td>%.0f</td><td>%.0f</td><td>%.3f</td>"
                        "<td>%.3f</td><td>%.3f</td>"
                        "<td>%s</td></tr>\n",
                        htmlEscape(o.name).c_str(),
                        htmlEscape(o.kind).c_str(), o.target,
                        o.total, o.bad, o.fastBurn, o.slowBurn,
                        o.budgetRemaining,
                        o.burning ? "BURNING" : "ok");
        }
        out += "</table>\n";
        out += strf("<p>SLO_BURN events: %zu &middot; "
                    "SLO_RECOVERED events: %zu</p>\n",
                    slo.burnEvents, slo.recoveredEvents);
        if (!slo.lastEvents.empty()) {
            out += "<h2>Recent SLO events</h2>\n<pre>";
            for (const auto &e : slo.lastEvents)
                out += htmlEscape(e) + "\n";
            out += "</pre>\n";
        }
    }
    if (have_access) {
        out += strf("<h2>Access log (%zu records)</h2>\n",
                    access.records);
        out += "<table><tr><th>outcome</th><th>count</th></tr>\n";
        static const char *const cls[6] = {
            "no answer", "1xx", "2xx", "3xx", "4xx", "5xx"};
        for (int k = 0; k < 6; ++k) {
            if (access.statusClass[k] > 0)
                out += strf("<tr><td>%s</td><td>%zu</td></tr>\n",
                            cls[k], access.statusClass[k]);
        }
        for (int k = 0; k < 7; ++k) {
            if (access.verdictCounts[k] > 0)
                out += strf("<tr><td>verdict %s</td>"
                            "<td>%zu</td></tr>\n",
                            kVerdictNames[k],
                            access.verdictCounts[k]);
        }
        out += strf("<tr><td>deadline misses</td>"
                    "<td>%zu</td></tr>\n",
                    access.deadlineMisses);
        out += "</table>\n";
    }
    if (have_chaos) {
        out += strf("<h2>Chaos campaign (%zu plans)</h2>\n",
                    chaos.plans);
        out += "<table><tr><th>invariant</th><th>pass</th>"
               "<th>fail</th></tr>\n";
        for (const auto &r : chaos.invariants) {
            out += strf("<tr><td>%s</td><td>%zu</td>"
                        "<td>%zu</td></tr>\n",
                        htmlEscape(r.name).c_str(), r.passes,
                        r.failures);
        }
        out += "</table>\n";
        out += strf("<p>violations: %zu (%zu plans)",
                    chaos.violations, chaos.violatingPlans);
        if (chaos.hasSummary) {
            out += strf(" &middot; crashes %.0f &middot; resumes "
                        "%.0f &middot; faults %.0f &middot; "
                        "determinism re-runs %.0f &middot; shrink "
                        "iterations %.0f",
                        chaos.crashes, chaos.resumes,
                        chaos.faultsInjected,
                        chaos.determinismReruns,
                        chaos.shrinkIterations);
        }
        out += "</p>\n";
        if (!chaos.violatingLines.empty()) {
            out += "<h2>Violating plans</h2>\n<pre>";
            for (const auto &l : chaos.violatingLines)
                out += htmlEscape(l) + "\n";
            out += "</pre>\n";
        }
    }
    if (!trace_stats.empty()) {
        out += "<h2>Trace spans</h2>\n<table>"
               "<tr><th>name</th><th>count</th>"
               "<th>total ms</th></tr>\n";
        for (const auto &t : trace_stats) {
            out += strf("<tr><td>%s</td><td>%zu</td>"
                        "<td>%.3f</td></tr>\n",
                        htmlEscape(t.name).c_str(), t.count,
                        static_cast<double>(t.totalDurNs) / 1e6);
        }
        out += "</table>\n";
    }
    if (!metric_samples.empty()) {
        out += "<h2>Metrics</h2>\n<table>"
               "<tr><th>series</th><th>value</th></tr>\n";
        for (const auto &m : metric_samples) {
            out += strf("<tr><td>%s</td><td>%s</td></tr>\n",
                        htmlEscape(m.name).c_str(),
                        fmtDouble(m.value, 6).c_str());
        }
        out += "</table>\n";
    }
    out += "</body></html>\n";
    return out;
}

} // namespace tomur
