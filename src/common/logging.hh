/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for user error (bad
 * configuration, invalid arguments) and exits cleanly; panic() is for
 * internal invariant violations and aborts; warn()/inform() never stop
 * execution.
 */

#ifndef TOMUR_COMMON_LOGGING_HH
#define TOMUR_COMMON_LOGGING_HH

#include <string>

namespace tomur {

/** Print "fatal: <msg>" to stderr and exit(1). For user errors. */
[[noreturn]] void fatal(const std::string &msg);

/** Print "panic: <msg>" to stderr and abort(). For internal bugs. */
[[noreturn]] void panic(const std::string &msg);

/** Print "warn: <msg>" to stderr. */
void warn(const std::string &msg);

/** Print "info: <msg>" to stderr. */
void inform(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

} // namespace tomur

#endif // TOMUR_COMMON_LOGGING_HH
