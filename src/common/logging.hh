/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for user error (bad
 * configuration, invalid arguments) and exits cleanly; panic() is for
 * internal invariant violations and aborts; warn()/inform() never stop
 * execution.
 */

#ifndef TOMUR_COMMON_LOGGING_HH
#define TOMUR_COMMON_LOGGING_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace tomur {

/** Print "fatal: <msg>" to stderr and exit(1). For user errors. */
[[noreturn]] void fatal(const std::string &msg);

/** Print "panic: <msg>" to stderr and abort(). For internal bugs. */
[[noreturn]] void panic(const std::string &msg);

/** Print "warn: <msg>" to stderr. */
void warn(const std::string &msg);

/**
 * Structured WARN event: "warn: [component] event k=v k=v" on
 * stderr. Used by the graceful-degradation paths (fallback chain,
 * retry loop, fault screens) so degradations are observable and
 * grep-able rather than silent. Always emitted, regardless of the
 * verbosity setting, and counted (see warnCount()) so tests and
 * monitors can assert that a degradation was reported.
 */
void warnEvent(
    const std::string &component, const std::string &event,
    const std::vector<std::pair<std::string, std::string>> &fields =
        {});

/** Number of warn()/warnEvent() calls since process start (or the
 *  last resetWarnCount()). */
std::size_t warnCount();

/** Reset the warn counter (tests isolate their assertions). */
void resetWarnCount();

/** Print "info: <msg>" to stderr. */
void inform(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

} // namespace tomur

#endif // TOMUR_COMMON_LOGGING_HH
