/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small xoshiro256** generator seeded via splitmix64. Every stochastic
 * component in the library takes an explicit Rng (or seed) so that
 * experiments are reproducible; nothing reads global entropy.
 */

#ifndef TOMUR_COMMON_RNG_HH
#define TOMUR_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace tomur {

/** splitmix64 step; used for seeding and cheap hashing. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * Complete serializable Rng state (xoshiro words + Box-Muller spare).
 * Capturing the spare matters: dropping it would desynchronize the
 * normal() stream across a checkpoint/restore boundary.
 */
struct RngState
{
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool hasSpare = false;
    double spare = 0.0;
};

/**
 * xoshiro256** pseudo-random generator.
 *
 * Satisfies UniformRandomBitGenerator so it can also drive <random>
 * distributions, though the built-in helpers below are preferred for
 * cross-platform determinism.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n), n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Multiplicative log-normal noise factor with unit median.
     * @param sigma standard deviation of the underlying normal.
     */
    double lognormalFactor(double sigma);

    /** Bernoulli trial with probability p. */
    bool chance(double p);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Pick a uniformly random element (container must be non-empty). */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[uniformInt(v.size())];
    }

    /** Derive an independent child generator (for per-task streams). */
    Rng split();

    /** Snapshot the full generator state for checkpointing. */
    RngState state() const;

    /** Restore a previously captured state; the stream continues
     *  exactly where the snapshot left off. */
    void setState(const RngState &st);

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace tomur

#endif // TOMUR_COMMON_RNG_HH
