/**
 * @file
 * Shared worker pool + deterministic parallel loops.
 *
 * The profiling/training pipeline fans thousands of independent
 * testbed solves, tree fits and predictions across cores. All
 * parallelism in the library goes through the one global ThreadPool
 * so the worker count is controlled in a single place: the
 * TOMUR_THREADS environment variable (default:
 * std::thread::hardware_concurrency()).
 *
 * Determinism contract: parallelFor/parallelMap assign work by index,
 * collect results by index, and rethrow the first (lowest-index)
 * exception. Combined with per-task RNG streams derived via
 * deriveSeed(base, index), a parallel run is bit-identical to the
 * same run with TOMUR_THREADS=1 — scheduling order can never leak
 * into results.
 *
 * Nested use is safe: a parallel loop entered from inside a pool
 * worker runs inline on that worker (no new tasks are queued), so
 * recursion cannot deadlock the fixed-size pool.
 */

#ifndef TOMUR_COMMON_THREADPOOL_HH
#define TOMUR_COMMON_THREADPOOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tomur {

/** Fixed-size worker pool executing queued jobs. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; values < 1 are clamped to 1. A
     *        one-thread pool spawns no workers at all — every loop
     *        runs inline on the caller.
     */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Workers available (>= 1; counts the caller's thread). */
    int threadCount() const { return threads_; }

    /** Enqueue a job (runs on some worker, eventually). */
    void post(std::function<void()> job);

    /** True when the calling thread is one of this pool's workers. */
    static bool onWorkerThread();

    /**
     * The process-wide pool. First use constructs it with
     * TOMUR_THREADS (or hardware_concurrency) workers.
     */
    static ThreadPool &global();

  private:
    void workerLoop();

    int threads_;
    std::vector<std::thread> workers_;
    std::vector<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * Worker count the global pool uses: TOMUR_THREADS when set (clamped
 * to >= 1), otherwise std::thread::hardware_concurrency().
 */
int configuredThreadCount();

/**
 * Resize the global pool (tests and the bench harness use this to
 * compare serial vs parallel runs in-process). Not thread-safe
 * against concurrent parallelFor calls — call it only between
 * parallel regions.
 */
void setGlobalThreadCount(int threads);

/** Current global pool width. */
int globalThreadCount();

/**
 * Run fn(0) ... fn(n-1), potentially in parallel, and block until
 * all calls finished. Iterations must be independent. The first
 * exception (by lowest index) is rethrown on the calling thread
 * after the loop drains; remaining iterations still run.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/**
 * Map fn over [0, n) collecting results in index order. The result
 * vector is identical to the serial loop's regardless of worker
 * count or scheduling.
 */
template <typename F>
auto
parallelMap(std::size_t n, F fn)
    -> std::vector<decltype(fn(std::size_t{}))>
{
    std::vector<decltype(fn(std::size_t{}))> out(n);
    parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

/**
 * Derive the seed for per-task RNG stream `index` from a base seed.
 * Stateless (splitmix64-based), so task i's stream is the same
 * whether tasks run serially, in parallel, or out of order.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t index);

} // namespace tomur

#endif // TOMUR_COMMON_THREADPOOL_HH
