/**
 * @file
 * Summary statistics used throughout the evaluation harnesses.
 */

#ifndef TOMUR_COMMON_STATS_HH
#define TOMUR_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace tomur {

/** Mean of a sample (0 for an empty sample). */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (0 for n < 2). */
double stddev(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile.
 * @param xs sample (not required to be sorted)
 * @param p percentile in [0, 100]
 */
double percentile(std::vector<double> xs, double p);

/** Median (50th percentile). */
double median(const std::vector<double> &xs);

/**
 * Median absolute deviation: median(|x - median(xs)|). A robust
 * spread estimate — unlike the standard deviation it ignores a
 * minority of wildly corrupted samples, which is what makes it
 * usable as an outlier screen over faulted measurements.
 */
double mad(const std::vector<double> &xs);

/** Minimum (0 for empty). */
double minOf(const std::vector<double> &xs);

/** Maximum (0 for empty). */
double maxOf(const std::vector<double> &xs);

/**
 * Five-number summary matching the paper's box-and-whisker plots:
 * whiskers at 5th/95th percentile, box at 25th/75th, line at median.
 */
struct BoxStats
{
    double p5 = 0.0;
    double p25 = 0.0;
    double p50 = 0.0;
    double p75 = 0.0;
    double p95 = 0.0;

    /** Compute from a sample. */
    static BoxStats from(const std::vector<double> &xs);
};

/** Online accumulator for mean/min/max/count without storing samples. */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace tomur

#endif // TOMUR_COMMON_STATS_HH
