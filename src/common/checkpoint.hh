/**
 * @file
 * Crash-safe generational checkpoint store.
 *
 * A CheckpointStore persists opaque state snapshots ("bodies") to a
 * directory with the durability discipline a kill -9 demands:
 *
 *  - every record is framed `tomur_ckpt 1 <body-bytes> <fnv1a64-hex>`
 *    followed by the body, the same checksum-framing discipline as
 *    the v2 model format, so a torn or bit-flipped file is detected
 *    on read instead of silently restoring garbage;
 *  - writes go to a `.tmp` sibling first, are fsync'd, and only then
 *    renamed over the final `ckpt-<generation>.tomur` name (rename on
 *    POSIX is atomic), so a crash mid-write can never damage an
 *    existing generation;
 *  - the newest N generations are retained; restore walks them newest
 *    first and returns the first one whose checksum verifies, so a
 *    corrupt latest generation degrades to a stale-but-valid one with
 *    a warnEvent, and only an empty/fully-corrupt directory surfaces
 *    an error Status.
 *
 * Crash-point injection (for the chaos tests and the fault-injecting
 * testbed) simulates a kill at each interesting instant of the write
 * protocol by throwing SimulatedCrash; the store's on-disk state
 * afterwards is exactly what a real crash would leave.
 */

#ifndef TOMUR_COMMON_CHECKPOINT_HH
#define TOMUR_COMMON_CHECKPOINT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.hh"

namespace tomur {

/** Where in the write protocol an injected crash fires. */
enum class CheckpointCrashPoint
{
    None,
    BeforeTempWrite, ///< nothing written at all
    MidTempWrite,    ///< truncated .tmp left behind
    BeforeRename,    ///< complete .tmp left behind, no generation
    BeforePrune,     ///< generation durable, old ones not yet pruned
};

/** Thrown by injected crash points (and the fault testbed's
 *  crash-after-batches hook) to simulate an abrupt kill. */
class SimulatedCrash : public std::runtime_error
{
  public:
    explicit SimulatedCrash(const std::string &where)
        : std::runtime_error("simulated crash at " + where)
    {
    }
};

struct CheckpointOptions
{
    /** Newest generations kept on disk after each write. */
    std::size_t generations = 3;
    /** fsync file + directory on every write (tests may disable). */
    bool fsync = true;
    /** Injected crash point for chaos tests. */
    CheckpointCrashPoint crashPoint = CheckpointCrashPoint::None;
};

/** A restored checkpoint: which generation and its body bytes. */
struct CheckpointRecord
{
    std::uint64_t generation = 0;
    std::string body;
};

class CheckpointStore
{
  public:
    explicit CheckpointStore(std::string dir,
                             CheckpointOptions opts = {});

    /**
     * Durably persist `body` as the next generation and prune
     * generations beyond the retention limit. Returns an IoError
     * Status on filesystem failure; throws SimulatedCrash when an
     * injected crash point is armed.
     */
    Status writeGeneration(const std::string &body);

    /**
     * Restore the newest generation whose frame verifies. Corrupt or
     * torn generations are skipped (warnEvent + metric) in favour of
     * older valid ones. NotFound when the directory holds no
     * generations; CorruptData when all of them fail verification.
     */
    Result<CheckpointRecord> loadLatestValid() const;

    /** Existing generation numbers, ascending (ignores .tmp files). */
    std::vector<std::uint64_t> listGenerations() const;

    /** Generation number the next writeGeneration() will use. */
    std::uint64_t nextGeneration() const { return nextGen_; }

    /** Arm/disarm the injected crash point. */
    void setCrashPoint(CheckpointCrashPoint p) { opts_.crashPoint = p; }

    const std::string &dir() const { return dir_; }

    /** Verify a framed record; ok() iff header+checksum check out.
     *  On success `*body` (if non-null) receives the body bytes. */
    static Status verifyFrame(const std::string &framed,
                              std::string *body);

    /** Frame `body` with the `tomur_ckpt 1 <bytes> <checksum>`
     *  header (exposed for tests that hand-corrupt records). */
    static std::string frame(const std::string &body);

  private:
    std::string generationPath(std::uint64_t gen) const;
    void crash(CheckpointCrashPoint p) const;
    void pruneOldGenerations();

    std::string dir_;
    CheckpointOptions opts_;
    std::uint64_t nextGen_ = 1;
};

} // namespace tomur

#endif // TOMUR_COMMON_CHECKPOINT_HH
