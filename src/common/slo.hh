/**
 * @file
 * Service-level-objective tracking as a pure fold over request
 * outcomes.
 *
 * An SloObjective declares what "good" means for a slice of traffic
 * (availability: no 5xx; latency: answered under a threshold) and
 * what fraction of requests must be good. The tracker keeps, per
 * objective, a bounded ring of good/bad verdicts and derives two
 * burn rates from it:
 *
 *     burn(window) = bad_fraction(window) / (1 - target)
 *
 * i.e. the multiple of the sustainable error rate the service is
 * currently consuming its error budget at. Burn 1.0 means exactly
 * on budget; burn 10 means the budget for the window's horizon is
 * gone in a tenth of it. Alerting follows the multi-window rule:
 * SLO_BURN fires only when BOTH the fast and the slow window burn
 * above the threshold (the fast window gives reaction time, the
 * slow window filters blips), and SLO_RECOVERED fires only after
 * the fast burn has stayed below `recoverFactor * burnThreshold`
 * for `recoverStable` consecutive outcomes — hysteresis, exactly
 * like PredictionMonitor's shift/recover pairing.
 *
 * Determinism: ingest() is a pure fold — no clocks, no RNG — so a
 * deterministic outcome stream yields byte-identical exports at any
 * TOMUR_THREADS (the serve-observatory golden diffs this). The
 * tracker also mirrors its state into `tomur_slo_*` metrics; those
 * are for live scraping, not for goldens. Not thread-safe: one
 * owner, like SamplingProfiler.
 */

#ifndef TOMUR_COMMON_SLO_HH
#define TOMUR_COMMON_SLO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tomur {

class Counter;
class Gauge;

/** What counts as a bad request for an objective. */
enum class SloKind
{
    /** Bad = 5xx (shed, internal error, deadline miss). */
    Availability,
    /** Bad = 5xx, a deadline miss, or latency above threshold. */
    Latency,
};

/** One declarative objective. */
struct SloObjective
{
    /** Metric-safe slug ([a-z0-9_]); becomes part of the
     *  tomur_slo_<name>_* metric family. */
    std::string name;
    SloKind kind = SloKind::Availability;
    /** Only outcomes with exactly this path count ("" = all). */
    std::string pathFilter;
    /** Latency objectives: a slower answer is bad (ms). */
    double latencyThresholdMs = 0.0;
    /** Required good fraction, in (0, 1) — e.g. 0.999. */
    double target = 0.999;
    /** Window sizes in outcomes (fast <= slow; slow bounds the
     *  ring). Requests, not wall time: the fold stays clock-free. */
    std::size_t fastWindow = 64;
    std::size_t slowWindow = 512;
    /** Burn rate at which both windows must sit to open SLO_BURN. */
    double burnThreshold = 2.0;
    /** Recovery requires fast burn < recoverFactor*burnThreshold... */
    double recoverFactor = 0.5;
    /** ...for this many consecutive outcomes. */
    std::size_t recoverStable = 16;
};

/** One request outcome fed to the fold. */
struct SloOutcome
{
    std::string path;
    int status = 200;
    double latencyMs = 0.0;
    bool deadlineMiss = false;
};

enum class SloEventKind
{
    Burn,
    Recovered,
};

/** A burn-rate transition (JSONL-exportable). */
struct SloEvent
{
    SloEventKind kind = SloEventKind::Burn;
    std::string objective;
    /** Matching outcomes seen by this objective when it fired. */
    std::uint64_t sample = 0;
    double fastBurn = 0.0;
    double slowBurn = 0.0;
    double budgetRemaining = 0.0;

    std::string toJson() const;
};

/** Point-in-time state of one objective. */
struct SloState
{
    std::string name;
    SloKind kind = SloKind::Availability;
    double target = 0.999;
    std::uint64_t total = 0; ///< matching outcomes ingested
    std::uint64_t bad = 0;   ///< of which bad
    double fastBurn = 0.0;
    double slowBurn = 0.0;
    /** 1 - slowBurn: fraction of the slow window's error budget
     *  left; negative = in deficit. */
    double budgetRemaining = 1.0;
    bool burning = false;
    std::uint64_t burnEvents = 0;
    std::uint64_t recoveredEvents = 0;
};

class SloTracker
{
  public:
    /** Objectives are validated (name non-empty, target in (0,1),
     *  1 <= fastWindow <= slowWindow) — a bad objective panics,
     *  like a histogram re-registered with a different layout. */
    explicit SloTracker(std::vector<SloObjective> objectives);

    /** Fold one outcome into every matching objective; returns the
     *  events (possibly none) this outcome triggered. Events are
     *  also retained internally (bounded) for export. */
    std::vector<SloEvent> ingest(const SloOutcome &outcome);

    std::size_t objectiveCount() const { return objs_.size(); }
    /** Snapshot of every objective, in declaration order. */
    std::vector<SloState> states() const;

    /** Retained events, oldest first (ring-bounded; see
     *  eventsDropped()). */
    const std::vector<SloEvent> &events() const { return events_; }
    std::uint64_t eventsDropped() const { return eventsDropped_; }

    /**
     * JSONL: one line per retained event, then a summary trailer
     * ({"slo_summary":...}) with per-objective state — the format
     * common/report digests. Pure function of the outcome stream.
     */
    void exportJsonl(std::ostream &out) const;
    std::string exportString() const;

  private:
    struct ObjectiveState
    {
        SloObjective obj;
        /** Verdict ring, slowWindow slots (1 = bad). */
        std::vector<std::uint8_t> ring;
        std::size_t head = 0; ///< next slot to overwrite
        std::uint64_t total = 0;
        std::uint64_t bad = 0;
        std::uint64_t fastBad = 0;
        std::uint64_t slowBad = 0;
        bool burning = false;
        std::size_t stableBelow = 0;
        std::uint64_t burnEvents = 0;
        std::uint64_t recoveredEvents = 0;

        Counter *requestsMetric = nullptr;
        Counter *badMetric = nullptr;
        Gauge *fastBurnMetric = nullptr;
        Gauge *slowBurnMetric = nullptr;
        Gauge *budgetMetric = nullptr;
        Gauge *burningMetric = nullptr;

        double fastBurnRate() const;
        double slowBurnRate() const;
    };

    static bool isBad(const SloObjective &obj,
                      const SloOutcome &outcome);
    void fillState(const ObjectiveState &os, SloState &out) const;

    std::vector<ObjectiveState> objs_;
    std::vector<SloEvent> events_;
    std::uint64_t eventsDropped_ = 0;
    Counter *burnEventsMetric_ = nullptr;
    Counter *recoveredEventsMetric_ = nullptr;

    /** Retained-event cap (oldest dropped past this). */
    static constexpr std::size_t kMaxEvents = 1024;
};

} // namespace tomur

#endif // TOMUR_COMMON_SLO_HH
