#include "common/trace.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <ostream>
#include <sstream>

#include "common/strutil.hh"
#include "common/telemetry.hh"

namespace tomur {

namespace {

/** Per-thread open-span stack + cross-pool inherited parent. */
thread_local std::vector<std::uint64_t> t_span_stack;
thread_local std::uint64_t t_inherited_parent = 0;

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

std::string
traceFormat(double v)
{
    return strf("%.9g", v);
}

// ---------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------

Tracer::Tracer()
{
    metrics().counter("tomur_trace_dropped_total");
}

void
Tracer::enable(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    records_.clear();
    records_.reserve(std::min<std::size_t>(capacity, 4096));
    capacity_ = capacity;
    dropped_ = 0;
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    records_.clear();
    dropped_ = 0;
    nextId_.store(1, std::memory_order_relaxed);
}

std::size_t
Tracer::recordCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
}

std::size_t
Tracer::droppedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::vector<TraceRecord>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
}

std::uint64_t
Tracer::currentSpan() const
{
    return t_span_stack.empty() ? t_inherited_parent
                                : t_span_stack.back();
}

std::uint64_t
Tracer::setInheritedParent(std::uint64_t id)
{
    std::uint64_t prev = t_inherited_parent;
    t_inherited_parent = id;
    return prev;
}

std::uint64_t
Tracer::openSpan()
{
    if (!enabled())
        return 0;
    std::uint64_t id =
        nextId_.fetch_add(1, std::memory_order_relaxed);
    t_span_stack.push_back(id);
    return id;
}

void
Tracer::closeSpan(TraceRecord rec)
{
    // The stack top must be this span (RAII scopes nest strictly),
    // but tolerate an enable()/disable() racing a live span.
    if (!t_span_stack.empty() && t_span_stack.back() == rec.id)
        t_span_stack.pop_back();
    record(std::move(rec));
}

void
Tracer::record(TraceRecord rec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (records_.size() >= capacity_) {
        ++dropped_;
        metrics().counter("tomur_trace_dropped_total").inc();
        return;
    }
    records_.push_back(std::move(rec));
}

Tracer &
tracer()
{
    // Leaked for the same reason as metrics(): pool workers may
    // consult the tracer during process teardown, after atexit
    // handlers would have destroyed a static instance.
    static Tracer *t = new Tracer;
    return *t;
}

// ---------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------

TraceSpan::TraceSpan(const char *name)
{
    Tracer &t = tracer();
    if (!t.enabled())
        return;
    rec_.parent = t.currentSpan();
    rec_.id = t.openSpan();
    if (rec_.id == 0)
        return;
    rec_.name = name;
    rec_.startNs = nowNs();
}

TraceSpan::~TraceSpan()
{
    if (!active())
        return;
    rec_.durNs = nowNs() - rec_.startNs;
    tracer().closeSpan(std::move(rec_));
}

void
TraceSpan::field(const char *key, const std::string &value)
{
    if (active())
        rec_.fields.push_back({key, value});
}

void
TraceSpan::field(const char *key, double value)
{
    if (active())
        rec_.fields.push_back({key, traceFormat(value)});
}

void
TraceSpan::field(const char *key, std::uint64_t value)
{
    if (active())
        rec_.fields.push_back({key, strf("%llu",
                                         (unsigned long long)value)});
}

void
TraceSpan::field(const char *key, std::int64_t value)
{
    if (active())
        rec_.fields.push_back({key, strf("%lld", (long long)value)});
}

void
TraceSpan::step(std::int64_t s)
{
    if (active())
        rec_.step = s;
}

void
tracePoint(const char *name, std::vector<TraceField> fields,
           std::int64_t step)
{
    Tracer &t = tracer();
    if (!t.enabled())
        return;
    TraceRecord rec;
    rec.isSpan = false;
    rec.parent = t.currentSpan();
    rec.name = name;
    rec.step = step;
    rec.fields = std::move(fields);
    t.record(std::move(rec));
}

// ---------------------------------------------------------------
// Export
// ---------------------------------------------------------------

namespace {

/** One JSONL line for a record (timestamps optional). */
std::string
recordLine(const TraceRecord &r, std::uint64_t id,
           std::uint64_t parent, bool timestamps)
{
    std::string line = "{\"type\":\"";
    line += r.isSpan ? "span" : "event";
    line += "\"";
    if (r.isSpan)
        line += strf(",\"id\":%llu", (unsigned long long)id);
    line += strf(",\"parent\":%llu", (unsigned long long)parent);
    line += ",\"name\":\"" + jsonEscape(r.name) + "\"";
    if (r.step >= 0)
        line += strf(",\"step\":%lld", (long long)r.step);
    for (const auto &f : r.fields) {
        line += ",\"" + jsonEscape(f.key) + "\":\"" +
                jsonEscape(f.value) + "\"";
    }
    if (timestamps && r.isSpan) {
        line += strf(",\"start_ns\":%llu,\"dur_ns\":%llu",
                     (unsigned long long)r.startNs,
                     (unsigned long long)r.durNs);
    }
    line += "}";
    return line;
}

struct TreeNode
{
    const TraceRecord *rec = nullptr;
    std::vector<std::size_t> children; ///< indices into nodes
    std::string key;                   ///< canonical subtree key
};

} // namespace

void
Tracer::exportJsonl(std::ostream &out,
                    const TraceExportOptions &opts) const
{
    auto records = snapshot();
    if (!opts.canonical) {
        for (const auto &r : records)
            out << recordLine(r, r.id, r.parent, true) << "\n";
        return;
    }

    // Canonical export: rebuild the tree, sort siblings by their
    // serialized subtree, renumber depth-first, omit timestamps.
    // Points and spans sharing a parent keep their recorded relative
    // order among points; spans are grouped after points and sorted
    // (points from one span are recorded by one thread, so their
    // order is deterministic; span completion order is not).
    std::vector<TreeNode> nodes(records.size());
    std::map<std::uint64_t, std::size_t> byId;
    for (std::size_t i = 0; i < records.size(); ++i) {
        nodes[i].rec = &records[i];
        if (records[i].isSpan)
            byId[records[i].id] = i;
    }
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < records.size(); ++i) {
        auto it = byId.find(records[i].parent);
        if (records[i].parent != 0 && it != byId.end() &&
            it->second != i) {
            nodes[it->second].children.push_back(i);
        } else {
            roots.push_back(i);
        }
    }

    // Bottom-up canonical keys: own line (no ids/timestamps) plus
    // the sorted children's keys. Recursion is on the span tree,
    // whose depth is the instrumentation nesting depth (shallow).
    auto buildKey = [&](auto &&self, std::size_t n) -> void {
        auto &node = nodes[n];
        std::vector<std::string> pointKeys, spanKeys;
        for (std::size_t c : node.children) {
            self(self, c);
            (nodes[c].rec->isSpan ? spanKeys : pointKeys)
                .push_back(nodes[c].key);
        }
        std::sort(spanKeys.begin(), spanKeys.end());
        node.key = recordLine(*node.rec, 0, 0, false);
        for (const auto &k : pointKeys)
            node.key += "\n" + k;
        for (const auto &k : spanKeys)
            node.key += "\n" + k;
    };
    for (std::size_t r : roots)
        buildKey(buildKey, r);
    std::sort(roots.begin(), roots.end(),
              [&](std::size_t a, std::size_t b) {
                  return nodes[a].key < nodes[b].key;
              });

    // Depth-first emission with renumbered ids.
    std::uint64_t next_id = 1;
    auto emit = [&](auto &&self, std::size_t n,
                    std::uint64_t parent) -> void {
        auto &node = nodes[n];
        std::uint64_t id = 0;
        if (node.rec->isSpan)
            id = next_id++;
        out << recordLine(*node.rec, id, parent, false) << "\n";
        std::vector<std::size_t> points, spans;
        for (std::size_t c : node.children)
            (nodes[c].rec->isSpan ? spans : points).push_back(c);
        std::sort(spans.begin(), spans.end(),
                  [&](std::size_t a, std::size_t b) {
                      return nodes[a].key < nodes[b].key;
                  });
        for (std::size_t c : points)
            self(self, c, id);
        for (std::size_t c : spans)
            self(self, c, id);
    };
    for (std::size_t r : roots)
        emit(emit, r, 0);
}

std::string
Tracer::exportString(const TraceExportOptions &opts) const
{
    std::ostringstream ss;
    exportJsonl(ss, opts);
    return ss.str();
}

} // namespace tomur
