#include "common/threadpool.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>

#include "common/deadline.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"

namespace tomur {

namespace {

/** Set while a thread is executing pool jobs (nested-loop guard). */
thread_local bool t_on_worker = false;

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

/**
 * Pool introspection metrics. Values depend on scheduling and pool
 * width, so the whole family lives under the `tomur_pool_` prefix
 * the deterministic-dump consumers exclude (see telemetry.hh).
 */
struct PoolMetrics
{
    Counter &jobsPosted =
        metrics().counter("tomur_pool_jobs_posted_total");
    Counter &jobsExecuted =
        metrics().counter("tomur_pool_jobs_executed_total");
    Counter &loops =
        metrics().counter("tomur_pool_loops_total");
    Counter &inlineLoops =
        metrics().counter("tomur_pool_inline_loops_total");
    Gauge &queueDepth = metrics().gauge("tomur_pool_queue_depth");
    Gauge &width = metrics().gauge("tomur_pool_width");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics pm;
    return pm;
}

} // namespace

ThreadPool::ThreadPool(int threads)
    : threads_(threads < 1 ? 1 : threads)
{
    // threads_ counts the calling thread as a participant: a pool of
    // width N spawns N-1 workers and the caller works too, so
    // TOMUR_THREADS=1 means strictly serial execution.
    for (int i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    poolMetrics().width.set(threads_);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        poolMetrics().queueDepth.set(
            static_cast<double>(queue_.size()));
    }
    poolMetrics().jobsPosted.inc();
    cv_.notify_one();
}

bool
ThreadPool::onWorkerThread()
{
    return t_on_worker;
}

void
ThreadPool::workerLoop()
{
    t_on_worker = true;
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping
            job = std::move(queue_.back());
            queue_.pop_back();
            poolMetrics().queueDepth.set(
                static_cast<double>(queue_.size()));
        }
        poolMetrics().jobsExecuted.inc();
        job();
    }
}

int
configuredThreadCount()
{
    if (const char *env = std::getenv("TOMUR_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            return n;
        warnEvent("threadpool", "bad-TOMUR_THREADS",
                  {{"value", env}});
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc >= 1 ? static_cast<int>(hc) : 1;
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(configuredThreadCount());
    return *g_pool;
}

void
setGlobalThreadCount(int threads)
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (g_pool && g_pool->threadCount() == (threads < 1 ? 1 : threads))
        return;
    g_pool.reset(); // join old workers before spawning anew
    g_pool = std::make_unique<ThreadPool>(threads);
}

int
globalThreadCount()
{
    return ThreadPool::global().threadCount();
}

namespace {

/** Shared state of one parallelFor invocation. */
struct LoopState
{
    const std::function<void(std::size_t)> *fn = nullptr;
    std::size_t n = 0;
    Deadline *deadline = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
    std::size_t errorIndex = std::numeric_limits<std::size_t>::max();

    void
    recordError(std::size_t i, std::exception_ptr e)
    {
        // Keep the lowest-index exception so the rethrow is
        // deterministic no matter which worker faulted first.
        std::lock_guard<std::mutex> lock(mutex);
        if (i < errorIndex) {
            errorIndex = i;
            error = std::move(e);
        }
    }

    /** Claim-and-run iterations until the range is exhausted. */
    void
    drain()
    {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            // Each claimed iteration is one cancellation granule: an
            // expired deadline skips the body (recording the miss at
            // the lowest skipped index) but still counts the slot
            // done, so the loop drains instead of hanging. Work that
            // already started is never interrupted — the phase can
            // overrun by at most the granules in flight.
            if (deadline != nullptr && deadline->check()) {
                recordError(i, std::make_exception_ptr(
                                   DeadlineExceeded("parallelFor")));
            } else {
                try {
                    (*fn)(i);
                } catch (...) {
                    recordError(i, std::current_exception());
                }
            }
            if (done.fetch_add(1) + 1 == n) {
                std::lock_guard<std::mutex> lock(mutex);
                cv.notify_all();
            }
        }
    }
};

} // namespace

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    // Inline execution: single iteration, serial pool, or a nested
    // loop already running on a pool worker (queueing from a worker
    // could deadlock a saturated fixed-size pool).
    ThreadPool &pool = ThreadPool::global();
    poolMetrics().loops.inc();
    Deadline *deadline = currentDeadline();
    if (n == 1 || pool.threadCount() == 1 ||
        ThreadPool::onWorkerThread()) {
        poolMetrics().inlineLoops.inc();
        std::exception_ptr error;
        std::size_t error_index =
            std::numeric_limits<std::size_t>::max();
        for (std::size_t i = 0; i < n; ++i) {
            if (deadline != nullptr && deadline->check()) {
                if (i < error_index) {
                    error_index = i;
                    error = std::make_exception_ptr(
                        DeadlineExceeded("parallelFor"));
                }
                break; // serial path: nothing in flight to finish
            }
            try {
                fn(i);
            } catch (...) {
                if (i < error_index) {
                    error_index = i;
                    error = std::current_exception();
                }
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }

    auto state = std::make_shared<LoopState>();
    state->fn = &fn;
    state->n = n;
    state->deadline = deadline;

    std::size_t helpers = static_cast<std::size_t>(pool.threadCount());
    if (helpers > n)
        helpers = n;
    // helpers counts the caller; post one job per extra worker. The
    // caller's current trace span travels with the job, so spans
    // opened inside pool tasks nest under the span that launched the
    // loop (the caller's own drain() sees it via its span stack).
    std::uint64_t trace_parent = tracer().currentSpan();
    for (std::size_t h = 1; h < helpers; ++h) {
        pool.post([state, trace_parent] {
            std::uint64_t prev =
                tracer().setInheritedParent(trace_parent);
            Deadline *prev_deadline =
                setCurrentDeadline(state->deadline);
            state->drain();
            setCurrentDeadline(prev_deadline);
            tracer().setInheritedParent(prev);
        });
    }

    state->drain(); // the caller participates

    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->cv.wait(lock, [&] {
            return state->done.load() == state->n;
        });
        if (state->error)
            std::rethrow_exception(state->error);
    }
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t index)
{
    // Two splitmix64 steps over (base, index) decorrelate adjacent
    // indices; the constant offsets the all-zero fixed point.
    std::uint64_t s = base + 0x9e3779b97f4a7c15ULL * (index + 1);
    std::uint64_t x = splitmix64(s);
    x ^= splitmix64(s);
    return splitmix64(s) ^ x;
}

} // namespace tomur
