#include "common/serial.hh"

#include <iomanip>
#include <istream>
#include <ostream>

namespace tomur {

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a 64 basis
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL; // FNV-1a 64 prime
    }
    return h;
}

void
writeSerialDouble(std::ostream &out, double v)
{
    out << std::setprecision(17) << v;
}

bool
expectToken(std::istream &in, const char *token)
{
    std::string got;
    in >> got;
    return static_cast<bool>(in) && got == token;
}

} // namespace tomur
