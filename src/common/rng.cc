#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace tomur {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return ((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::uniformInt(0)");
    // Rejection-free multiply-shift (Lemire); tiny bias acceptable for
    // simulation purposes but we keep the rejection loop for exactness.
    std::uint64_t threshold = (-n) % n;
    for (;;) {
        std::uint64_t r = (*this)();
        __uint128_t m = static_cast<__uint128_t>(r) * n;
        std::uint64_t lo = static_cast<std::uint64_t>(m);
        if (lo >= threshold)
            return static_cast<std::uint64_t>(m >> 64);
    }
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (hi < lo)
        panic("Rng::uniformInt: hi < lo");
    return lo + static_cast<std::int64_t>(
        uniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormalFactor(double sigma)
{
    return std::exp(normal() * sigma);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng((*this)());
}

RngState
Rng::state() const
{
    RngState st;
    for (int i = 0; i < 4; ++i)
        st.s[i] = s_[i];
    st.hasSpare = hasSpare_;
    st.spare = spare_;
    return st;
}

void
Rng::setState(const RngState &st)
{
    for (int i = 0; i < 4; ++i)
        s_[i] = st.s[i];
    hasSpare_ = st.hasSpare;
    spare_ = st.spare;
}

} // namespace tomur
