#include "common/status.hh"

namespace tomur {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "ok";
      case StatusCode::InvalidArgument:
        return "invalid argument";
      case StatusCode::FailedPrecondition:
        return "failed precondition";
      case StatusCode::CorruptData:
        return "corrupt data";
      case StatusCode::Unavailable:
        return "unavailable";
      case StatusCode::NotFound:
        return "not found";
      case StatusCode::IoError:
        return "i/o error";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    if (isOk())
        return "ok";
    std::string s = statusCodeName(code_);
    if (!message_.empty()) {
        s += ": ";
        s += message_;
    }
    return s;
}

Status
Status::withContext(const std::string &context) const
{
    if (isOk())
        return *this;
    return error(code_, context + ": " + message_);
}

} // namespace tomur
