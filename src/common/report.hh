/**
 * @file
 * Observability report renderer: folds the artifact streams a run
 * can produce — a Prometheus-style metrics dump (`--metrics-out`),
 * a trace JSONL export (`--trace-out`), a monitor event stream
 * (`tomur monitor --events-out`), an SLO stream (/debug/slo), and a
 * serving access log (/debug/access or `--access-log`) — into one
 * self-contained text or HTML dashboard. Everything is parsed from
 * the serialized artifacts, not from live registries, so the
 * renderer works on files collected from another process, another
 * machine, or an earlier run.
 */

#ifndef TOMUR_COMMON_REPORT_HH
#define TOMUR_COMMON_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"

namespace tomur {

/** The artifact bodies to render (empty string = absent). */
struct ReportArtifacts
{
    std::string metricsText;  ///< Prometheus-style dump body
    std::string traceJsonl;   ///< trace export (one JSON per line)
    std::string monitorJsonl; ///< monitor events + summary trailer
    std::string sloJsonl;     ///< SLO events + slo_summary trailer
    std::string accessJsonl;  ///< serving access log (JSONL)
    std::string chaosJsonl;   ///< chaos campaign ledger + trailer
};

/** Rendering options. */
struct ReportOptions
{
    bool html = false; ///< HTML dashboard instead of plain text
    std::string title = "Tomur observability report";
};

/** One parsed metric sample. */
struct MetricSample
{
    std::string name; ///< full series name (with any {labels})
    double value = 0.0;
};

/** Aggregated per-span-name trace stats. */
struct TraceNameStats
{
    std::string name;
    std::size_t count = 0;        ///< spans + points with this name
    std::uint64_t totalDurNs = 0; ///< summed span durations
};

/** Parsed monitor (+ optional supervisor) stream. */
struct MonitorDigest
{
    std::size_t eventCounts[5] = {}; ///< by MonitorEventKind order
    std::vector<std::string> lastEvents; ///< most recent raw lines
    std::string summaryLine;             ///< raw summary trailer

    /** Time-to-recovery rollup from the summary trailer (absent in
     *  streams written before the recovery metric existed). */
    bool hasRecovery = false;
    double recoveryCount = 0.0;
    double recoveryMeanSamples = 0.0;
    double recoveryMaxSamples = 0.0;
    bool recoveryOpen = false;

    /** Autopilot runs append supervisor events to the same stream. */
    bool hasSupervisor = false;
    std::size_t supervisorEventCounts[9] = {}; ///< SupervisorEventKind
    double deadlineMisses = 0.0; ///< from the supervisor summary
    std::string supervisorSummaryLine;
};

/** One objective row from the slo_summary trailer. */
struct SloObjectiveRow
{
    std::string name;
    std::string kind; ///< "availability" | "latency"
    double target = 0.0;
    double total = 0.0;
    double bad = 0.0;
    double fastBurn = 0.0;
    double slowBurn = 0.0;
    double budgetRemaining = 0.0;
    bool burning = false;
    double burnEvents = 0.0;
    double recoveredEvents = 0.0;
};

/** Parsed SLO stream (SLO_BURN/SLO_RECOVERED events + trailer). */
struct SloDigest
{
    std::size_t burnEvents = 0;      ///< event lines seen
    std::size_t recoveredEvents = 0; ///< event lines seen
    std::vector<std::string> lastEvents; ///< most recent raw lines
    bool hasSummary = false;
    std::vector<SloObjectiveRow> objectives;
    double eventsDropped = 0.0;
};

/** Parsed access-log stream, rolled up by outcome. */
struct AccessDigest
{
    std::size_t records = 0;
    /** [0]=no answer (status 0), [1..5]=1xx..5xx responses. */
    std::size_t statusClass[6] = {};
    std::size_t verdictCounts[7] = {}; ///< by kVerdictNames order
    std::size_t deadlineMisses = 0;
    double totalHandleMs = 0.0; ///< summed over answered requests
};

/** Per-invariant pass/fail tally from a chaos campaign ledger. */
struct ChaosInvariantRow
{
    std::string name; ///< wire name ("no_hang", ...)
    std::size_t passes = 0;
    std::size_t failures = 0;
};

/** Parsed chaos campaign ledger (plan lines + chaos_summary). */
struct ChaosDigest
{
    std::size_t plans = 0;      ///< chaos_plan lines seen
    std::size_t violations = 0; ///< summed per-plan violations
    std::size_t violatingPlans = 0;
    double crashes = 0.0;
    double resumes = 0.0;
    double faultsInjected = 0.0;
    double determinismReruns = 0.0;
    double shrinkIterations = 0.0;
    bool hasSummary = false;
    /** Invariant rows in first-seen verdict order. */
    std::vector<ChaosInvariantRow> invariants;
    std::vector<std::string> violatingLines; ///< raw, most recent
};

/** Access-log verdict wire names, in AccessDigest counter order. */
extern const char *const kVerdictNames[7];

/** Parse a metrics dump body (skips comments and bucket series). */
std::vector<MetricSample> parseMetricsText(const std::string &body);

/** Aggregate a trace JSONL export by record name. */
std::vector<TraceNameStats> parseTraceJsonl(const std::string &body);

/** Digest a monitor JSONL stream (events + summary trailer). */
MonitorDigest parseMonitorJsonl(const std::string &body);

/** Digest an SLO stream (`tomur serve` /debug/slo body). */
SloDigest parseSloJsonl(const std::string &body);

/** Digest an access-log stream (/debug/access or --access-log). */
AccessDigest parseAccessJsonl(const std::string &body);

/** Digest a chaos campaign ledger (`tomur chaos --events-out`). */
ChaosDigest parseChaosJsonl(const std::string &body);

/**
 * Render the dashboard. Returns an error only when every artifact is
 * absent (nothing to render); individual malformed lines are skipped,
 * not fatal — a report over partial artifacts beats no report.
 */
Result<std::string> renderReport(const ReportArtifacts &artifacts,
                                 const ReportOptions &opts = {});

} // namespace tomur

#endif // TOMUR_COMMON_REPORT_HH
