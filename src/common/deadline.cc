#include "common/deadline.hh"

#include "common/telemetry.hh"

namespace tomur {

namespace {

thread_local Deadline *t_deadline = nullptr;

} // namespace

Deadline::Deadline(Mode mode, double ms, std::uint64_t granules)
    : mode_(mode), budget_(granules)
{
    if (mode_ == Mode::WallClock) {
        wallDeadline_ =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(ms));
    }
}

void
Deadline::markTripped()
{
    tripped_.store(true, std::memory_order_relaxed);
    if (!missCounted_.exchange(true, std::memory_order_relaxed))
        metrics().counter("tomur_deadline_misses_total").inc();
}

bool
Deadline::check()
{
    std::uint64_t made =
        checks_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (tripped_.load(std::memory_order_relaxed)) {
        // Re-arm the miss counter path in case cancel() tripped the
        // token without going through markTripped().
        markTripped();
        return true;
    }
    switch (mode_) {
    case Mode::None:
        return false;
    case Mode::WallClock:
        if (std::chrono::steady_clock::now() >= wallDeadline_) {
            markTripped();
            return true;
        }
        return false;
    case Mode::Granules:
        if (made > budget_) {
            markTripped();
            return true;
        }
        return false;
    }
    return false;
}

Deadline *
currentDeadline()
{
    return t_deadline;
}

Deadline *
setCurrentDeadline(Deadline *d)
{
    Deadline *prev = t_deadline;
    t_deadline = d;
    return prev;
}

void
checkDeadline(const char *where)
{
    Deadline *d = t_deadline;
    if (d != nullptr && d->check())
        throw DeadlineExceeded(where);
}

} // namespace tomur
