/**
 * @file
 * Process-wide metrics registry: counters, gauges, and fixed-bucket
 * histograms, named under the `tomur_<subsystem>_<name>` convention
 * and dumpable as Prometheus-style text (`dumpMetrics()` / the CLI's
 * `--metrics-out`).
 *
 * Write-path design: every counter and histogram bucket is striped
 * across cache-line-aligned atomic shards, and each thread owns one
 * shard (assigned round-robin on first touch), so TOMUR_THREADS pool
 * workers increment without contending on a shared line or taking a
 * lock. Reads aggregate the shards; `fetch_add` per shard means
 * concurrent increments always sum exactly — nothing is sampled or
 * lost.
 *
 * Determinism contract: metric *values* produced by the library's
 * deterministic phases (equilibrium solves, cache hit/miss on
 * distinct keys, GBR fits, training sample counts) are identical at
 * any pool width, so a dump filtered to those families is
 * byte-identical across TOMUR_THREADS settings — which is what the
 * golden-metrics test asserts. Scheduling-dependent families (the
 * `tomur_pool_*` pool introspection metrics) are excluded via
 * DumpOptions.
 */

#ifndef TOMUR_COMMON_TELEMETRY_HH
#define TOMUR_COMMON_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tomur {

/**
 * Monotonic counter, striped per thread. inc() is lock-free and
 * wait-free (one relaxed fetch_add on the calling thread's shard);
 * value() sums all shards.
 */
class Counter
{
  public:
    void inc(std::uint64_t n = 1);
    std::uint64_t value() const;
    void reset();

    static constexpr int numShards = 32;

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> v{0};
    };
    Shard shards_[numShards];
};

/** A value that can go up and down (queue depths, entry counts). */
class Gauge
{
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    void add(double d);
    double value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Histogram with a fixed bucket layout chosen at registration.
 * Observations land in the first bucket whose upper bound is >= the
 * value (cumulative counts are computed at dump time, Prometheus
 * style); everything above the last bound lands in the implicit
 * +Inf bucket. Bucket counts and the observation count are striped
 * like Counter, so the invariant "sum of bucket counts == count"
 * holds exactly under any concurrency.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    struct Snapshot
    {
        std::vector<double> bounds;         ///< upper bounds
        std::vector<std::uint64_t> counts;  ///< per-bucket (+Inf last)
        std::uint64_t count = 0;
        double sum = 0.0;
    };
    Snapshot snapshot() const;
    void reset();

    /** bounds {start, start*factor, ...} (count entries). */
    static std::vector<double>
    exponentialBounds(double start, double factor, int count);

  private:
    std::vector<double> bounds_;
    std::vector<std::unique_ptr<Counter>> buckets_; ///< +Inf last
    Counter count_;
    std::atomic<double> sum_{0.0};
};

/** Dump filtering (see the determinism note in the file header). */
struct DumpOptions
{
    /** Skip metrics whose name starts with any of these. */
    std::vector<std::string> excludePrefixes;
};

/**
 * Name -> metric registry. Registration (the first `counter(name)` /
 * `gauge(name)` / `histogram(name, ...)` call) takes a mutex; the
 * returned reference is stable for the process lifetime, so hot
 * paths look a metric up once and keep the reference.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** bounds are fixed by the first registration; later calls with
     *  a different layout panic (layout drift breaks dump diffs). */
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &bounds);

    /** Prometheus-style text, sorted by metric name. */
    void dump(std::ostream &out, const DumpOptions &opts = {}) const;
    std::string dumpString(const DumpOptions &opts = {}) const;

    /** One JSON object, sorted by metric name (the /debug/vars
     *  body): counters and gauges as numbers, histograms as
     *  {"count","sum","buckets":[{"le","cum"}...]} with cumulative
     *  bucket counts and an explicit "+Inf" — the same convention
     *  as the text dump, so both views agree. */
    void dumpJson(std::ostream &out,
                  const DumpOptions &opts = {}) const;
    std::string dumpJsonString(const DumpOptions &opts = {}) const;

    /** Distinct registered metrics. */
    std::size_t size() const;

    /** Zero every metric (registrations are kept). Tests isolate
     *  their assertions with this; production code never calls it. */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** The process-wide registry. */
MetricsRegistry &metrics();

/** metrics().dump(out) shorthand (the CLI's --metrics-out body). */
void dumpMetrics(std::ostream &out, const DumpOptions &opts = {});

} // namespace tomur

#endif // TOMUR_COMMON_TELEMETRY_HH
