#include "common/sampler.hh"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "common/strutil.hh"

namespace tomur {

std::uint64_t
SamplingProfiler::clockNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

SamplingProfiler::SamplingProfiler(SamplerOptions opts)
    : opts_(opts), rng_(opts.seed)
{
    if (opts_.ringCapacity == 0)
        opts_.ringCapacity = 1;
    if (opts_.meanPeriod == 0)
        opts_.meanPeriod = 1;
    ring_.reserve(opts_.ringCapacity);
    countdown_ = nextGap();
}

std::uint64_t
SamplingProfiler::nextGap()
{
    // Uniform in [1, 2*meanPeriod - 1]: mean = meanPeriod, and a
    // meanPeriod of 1 degenerates to sampling every token.
    return 1 + rng_.uniformInt(2 * opts_.meanPeriod - 1);
}

int
SamplingProfiler::registerSite(const std::string &name)
{
    for (std::size_t i = 0; i < siteNames_.size(); ++i) {
        if (siteNames_[i] == name)
            return static_cast<int>(i);
    }
    siteNames_.push_back(name);
    siteTokens_.push_back(0);
    siteSampled_.push_back(0);
    siteSampledNs_.push_back(0);
    return static_cast<int>(siteNames_.size()) - 1;
}

void
SamplingProfiler::endToken(int site, std::uint64_t durNs)
{
    ++sampledTokens_;
    if (site >= 0 &&
        static_cast<std::size_t>(site) < siteSampled_.size()) {
        ++siteSampled_[static_cast<std::size_t>(site)];
        siteSampledNs_[static_cast<std::size_t>(site)] += durNs;
    }
    SampledToken tok;
    tok.site = site;
    tok.index = tokens_;
    tok.durNs = durNs;
    if (ring_.size() < opts_.ringCapacity) {
        ring_.push_back(tok);
        return;
    }
    // Full: overwrite the oldest slot — bounded memory by design.
    ring_[ringHead_] = tok;
    ringHead_ = (ringHead_ + 1) % opts_.ringCapacity;
    ++dropped_;
}

std::vector<SampledToken>
SamplingProfiler::ringContents() const
{
    std::vector<SampledToken> out;
    out.reserve(ring_.size());
    if (ring_.size() < opts_.ringCapacity) {
        out = ring_; // not yet wrapped: insertion order is age order
        return out;
    }
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(ringHead_ + i) % ring_.size()]);
    return out;
}

std::vector<SamplerSiteStats>
SamplingProfiler::siteStats() const
{
    std::vector<SamplerSiteStats> out;
    out.reserve(siteNames_.size());
    for (std::size_t i = 0; i < siteNames_.size(); ++i) {
        SamplerSiteStats s;
        s.name = siteNames_[i];
        s.tokens = siteTokens_[i];
        s.sampled = siteSampled_[i];
        s.sampledNs = siteSampledNs_[i];
        out.push_back(std::move(s));
    }
    return out;
}

void
SamplingProfiler::exportText(std::ostream &out) const
{
    out << strf("sampling profiler: %llu tokens, %llu sampled "
                "(mean period %llu), ring %zu/%zu, %llu evicted\n",
                (unsigned long long)tokens_,
                (unsigned long long)sampledTokens_,
                (unsigned long long)opts_.meanPeriod, ring_.size(),
                opts_.ringCapacity, (unsigned long long)dropped_);
    for (const auto &s : siteStats()) {
        double mean_us =
            s.sampled ? static_cast<double>(s.sampledNs) /
                            static_cast<double>(s.sampled) / 1e3
                      : 0.0;
        out << strf("  %-24s tokens=%-10llu sampled=%-8llu "
                    "mean=%.2fus\n",
                    s.name.c_str(), (unsigned long long)s.tokens,
                    (unsigned long long)s.sampled, mean_us);
    }
}

} // namespace tomur
