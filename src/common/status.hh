/**
 * @file
 * Rich, propagated error reporting for recoverable failures.
 *
 * The logging helpers (fatal/panic) terminate the process; that is
 * the right call for internal invariant violations but not for
 * conditions a production prediction service must survive: corrupt
 * model files, degenerate calibration data, faulted measurements.
 * Those paths return a Status (or Result<T>) instead, carrying an
 * error category plus a human-readable message that names the thing
 * that failed, so callers can fall back, retry, or surface the error
 * without crashing.
 */

#ifndef TOMUR_COMMON_STATUS_HH
#define TOMUR_COMMON_STATUS_HH

#include <optional>
#include <string>
#include <utility>

namespace tomur {

/** Error categories (coarse: drives fallback/exit-code decisions). */
enum class StatusCode
{
    Ok,
    InvalidArgument,    ///< caller passed something unusable
    FailedPrecondition, ///< object not in the required state
    CorruptData,        ///< malformed/damaged serialized input
    Unavailable,        ///< resource degraded or measurement faulted
    NotFound,           ///< named entity does not exist
    IoError,            ///< underlying stream/file failure
};

/** Status code name for messages. */
const char *statusCodeName(StatusCode code);

/**
 * An error category plus message, or success. Contextually
 * convertible to bool (true == ok) so existing `if (!m.load(in))`
 * call sites keep working after a bool -> Status migration.
 */
class [[nodiscard]] Status
{
  public:
    Status() = default;

    static Status ok() { return Status(); }

    static Status
    error(StatusCode code, std::string message)
    {
        Status s;
        s.code_ = code;
        s.message_ = std::move(message);
        return s;
    }

    static Status
    invalidArgument(std::string m)
    {
        return error(StatusCode::InvalidArgument, std::move(m));
    }

    static Status
    failedPrecondition(std::string m)
    {
        return error(StatusCode::FailedPrecondition, std::move(m));
    }

    static Status
    corruptData(std::string m)
    {
        return error(StatusCode::CorruptData, std::move(m));
    }

    static Status
    unavailable(std::string m)
    {
        return error(StatusCode::Unavailable, std::move(m));
    }

    static Status
    notFound(std::string m)
    {
        return error(StatusCode::NotFound, std::move(m));
    }

    static Status
    ioError(std::string m)
    {
        return error(StatusCode::IoError, std::move(m));
    }

    bool isOk() const { return code_ == StatusCode::Ok; }
    explicit operator bool() const { return isOk(); }

    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "ok" or "<code>: <message>". */
    std::string toString() const;

    /**
     * Prefix more context onto the message ("while loading X: ...")
     * so a deep failure names every enclosing section.
     */
    Status withContext(const std::string &context) const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * A value or the Status explaining why there is none.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) // NOLINT: implicit by design, like StatusOr
        : value_(std::move(value))
    {
    }

    Result(Status status) // NOLINT: implicit by design
        : status_(std::move(status))
    {
        if (status_.isOk()) {
            status_ = Status::error(StatusCode::InvalidArgument,
                                    "Result built from an OK status "
                                    "without a value");
        }
    }

    bool isOk() const { return value_.has_value(); }
    explicit operator bool() const { return isOk(); }

    const Status &status() const { return status_; }

    /** The value; call only when isOk(). */
    const T &value() const { return *value_; }
    T &value() { return *value_; }

    /** The value, or `fallback` when this holds an error. */
    T
    valueOr(T fallback) const
    {
        return value_ ? *value_ : std::move(fallback);
    }

  private:
    std::optional<T> value_;
    Status status_;
};

} // namespace tomur

#endif // TOMUR_COMMON_STATUS_HH
