#include "common/strutil.hh"

#include <cstdio>
#include <sstream>

namespace tomur {

std::string
strf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args2);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(args2);
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
fmtDouble(double v, int decimals)
{
    return strf("%.*f", decimals, v);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strf("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    return out;
}

} // namespace tomur
