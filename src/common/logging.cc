#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace tomur {

namespace {
bool verboseEnabled = true;
std::size_t warnsEmitted = 0;
} // namespace

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const std::string &msg)
{
    ++warnsEmitted;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
warnEvent(
    const std::string &component, const std::string &event,
    const std::vector<std::pair<std::string, std::string>> &fields)
{
    std::string line = "[" + component + "] " + event;
    for (const auto &[key, value] : fields)
        line += " " + key + "=" + value;
    warn(line);
}

std::size_t
warnCount()
{
    return warnsEmitted;
}

void
resetWarnCount()
{
    warnsEmitted = 0;
}

void
inform(const std::string &msg)
{
    if (verboseEnabled)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

} // namespace tomur
