/**
 * @file
 * Seeded sampling profiler for hot loops: a bounded-memory profiler
 * that times a pseudo-random 1-in-meanPeriod subset of its tokens
 * instead of every one, so instrumenting a replay loop that ingests
 * hundreds of thousands of samples costs a counter decrement per
 * token — not a clock read — on the unsampled path.
 *
 * Design (after the ring-buffered token-profiler idiom):
 *  - every token bumps per-site counts; only *sampled* tokens read
 *    the steady clock and enter the ring;
 *  - the ring has fixed capacity: a full ring overwrites its oldest
 *    token (and counts the eviction), so memory stays bounded no
 *    matter how many tokens flow through;
 *  - which token indices get sampled is a pure function of the seed
 *    (a countdown of RNG-drawn gaps with mean `meanPeriod`), so two
 *    profilers with the same seed sample the same indices — the
 *    durations are wall-clock, the *selection* is deterministic.
 *
 * Not thread-safe: one owner per loop, like PredictionMonitor. The
 * profiler is pure observability — it must never feed a decision
 * path, or the repo's determinism contract breaks.
 */

#ifndef TOMUR_COMMON_SAMPLER_HH
#define TOMUR_COMMON_SAMPLER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace tomur {

/** Sampling-profiler tuning. */
struct SamplerOptions
{
    /** Sampled tokens retained (ring slots). */
    std::size_t ringCapacity = 4096;
    /** Expected tokens between two samples (1 = sample all). Gaps
     *  are drawn uniformly from [1, 2*meanPeriod - 1]. */
    std::uint64_t meanPeriod = 64;
    /** Seed of the gap stream (selection determinism). */
    std::uint64_t seed = 1;
};

/** One retained (sampled) token. */
struct SampledToken
{
    int site = 0;            ///< site id from registerSite()
    std::uint64_t index = 0; ///< 1-based global token index
    std::uint64_t durNs = 0; ///< measured duration
};

/** Per-site aggregate. */
struct SamplerSiteStats
{
    std::string name;
    std::uint64_t tokens = 0;    ///< all tokens at this site
    std::uint64_t sampled = 0;   ///< tokens that were timed
    std::uint64_t sampledNs = 0; ///< summed sampled durations
};

class SamplingProfiler
{
  public:
    explicit SamplingProfiler(SamplerOptions opts = {});

    /** Register (or look up) a site by name; ids are dense and
     *  assigned in registration order. */
    int registerSite(const std::string &name);

    /**
     * RAII token: decides at construction whether this token is
     * sampled (and only then reads the clock). A null profiler makes
     * the scope a no-op, so call sites need no branching.
     */
    class Scope
    {
      public:
        Scope(SamplingProfiler *profiler, int site)
            : profiler_(profiler), site_(site)
        {
            if (profiler_ &&
                (sampled_ = profiler_->beginToken(site_)))
                startNs_ = clockNs();
        }
        ~Scope()
        {
            // sampled_ is only ever set with a live profiler, so
            // one flag test covers both conditions.
            if (sampled_)
                profiler_->endToken(site_, clockNs() - startNs_);
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        SamplingProfiler *profiler_;
        int site_;
        bool sampled_ = false;
        std::uint64_t startNs_ = 0;
    };

    /** Count one token at `site`; true when it must be timed (the
     *  caller then reports the duration via endToken). `site` MUST
     *  come from registerSite() — the hot path elides the bounds
     *  check. Inline so the unsampled path — two counter bumps, a
     *  decrement and a branch — costs no function call in the
     *  loops it instruments. */
    bool beginToken(int site)
    {
        ++tokens_;
        ++siteTokens_[static_cast<std::size_t>(site)];
        if (--countdown_ > 0)
            return false;
        countdown_ = nextGap();
        return true;
    }
    /** Record a sampled token's measured duration. */
    void endToken(int site, std::uint64_t durNs);

    std::uint64_t tokens() const { return tokens_; }
    std::uint64_t sampledTokens() const { return sampledTokens_; }
    /** Sampled tokens evicted by ring wrap-around. */
    std::uint64_t droppedTokens() const { return dropped_; }
    std::size_t ringCapacity() const { return opts_.ringCapacity; }

    /** Ring contents, oldest first. Size <= ringCapacity always. */
    std::vector<SampledToken> ringContents() const;
    /** Per-site aggregates, in site-id order. */
    std::vector<SamplerSiteStats> siteStats() const;

    /** Human-readable dump (per-site lines + ring stats). */
    void exportText(std::ostream &out) const;

  private:
    /** steady_clock in ns; out of line so the header (and every
     *  hot loop including it) stays free of <chrono>. */
    static std::uint64_t clockNs();
    std::uint64_t nextGap();

    SamplerOptions opts_;
    Rng rng_;
    std::uint64_t countdown_;
    std::uint64_t tokens_ = 0;
    std::uint64_t sampledTokens_ = 0;
    std::uint64_t dropped_ = 0;

    std::vector<std::string> siteNames_;
    std::vector<std::uint64_t> siteTokens_;
    std::vector<std::uint64_t> siteSampled_;
    std::vector<std::uint64_t> siteSampledNs_;

    std::vector<SampledToken> ring_; ///< capacity fixed up front
    std::size_t ringHead_ = 0;       ///< next slot to overwrite
};

} // namespace tomur

#endif // TOMUR_COMMON_SAMPLER_HH
