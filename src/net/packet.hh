/**
 * @file
 * Packet buffer with lazy header views.
 *
 * A Packet owns its wire bytes. Network functions parse headers out of
 * the bytes and may rewrite them in place (e.g. NAT); the builder
 * produces well-formed Ethernet/IPv4/{TCP,UDP} frames.
 */

#ifndef TOMUR_NET_PACKET_HH
#define TOMUR_NET_PACKET_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/headers.hh"

namespace tomur::net {

/**
 * A single packet: owned wire bytes plus parse helpers.
 */
class Packet
{
  public:
    Packet() = default;

    /** Construct from raw wire bytes. */
    explicit Packet(std::vector<std::uint8_t> bytes);

    /** Total frame length in bytes. */
    std::size_t size() const { return bytes_.size(); }

    /** Raw byte access. */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> &bytes() { return bytes_; }

    /** Parse the Ethernet header. */
    std::optional<EthHeader> eth() const;

    /** Parse the IPv4 header (assumes EtherType IPv4). */
    std::optional<Ipv4Header> ipv4() const;

    /** Parse the TCP header (assumes IPv4/TCP). */
    std::optional<TcpHeader> tcp() const;

    /** Parse the UDP header (assumes IPv4/UDP). */
    std::optional<UdpHeader> udp() const;

    /** Extract the canonical 5-tuple, if the packet is IPv4 TCP/UDP. */
    std::optional<FiveTuple> fiveTuple() const;

    /** L4 payload view (empty span if not IPv4 TCP/UDP). */
    std::span<const std::uint8_t> payload() const;

    /** Byte offset of the L4 payload, or size() if none. */
    std::size_t payloadOffset() const;

    /**
     * Rewrite the IPv4 src/dst and L4 ports in place and refresh the
     * IPv4 checksum. Used by NAT-style functions.
     */
    void rewriteAddressing(const FiveTuple &tuple);

    /** Decrement TTL and refresh the IPv4 checksum; false if expired. */
    bool decrementTtl();

    /** Verify the IPv4 header checksum. */
    bool ipv4ChecksumOk() const;

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Builds well-formed packets for a flow.
 */
class PacketBuilder
{
  public:
    /**
     * Build an Ethernet/IPv4/{UDP,TCP} frame.
     *
     * @param tuple flow addressing
     * @param payload L4 payload bytes
     * @param ipId IPv4 identification field
     */
    static Packet build(const FiveTuple &tuple,
                        std::span<const std::uint8_t> payload,
                        std::uint16_t ipId = 0);

    /**
     * Total frame size for a given payload size (UDP framing).
     */
    static std::size_t frameSize(std::size_t payload_len, IpProto proto);

    /**
     * Payload size needed for a given total frame size (>= minimum
     * header stack); clamps to zero.
     */
    static std::size_t payloadForFrame(std::size_t frame_len,
                                       IpProto proto);
};

} // namespace tomur::net

#endif // TOMUR_NET_PACKET_HH
