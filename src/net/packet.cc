#include "net/packet.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tomur::net {

Packet::Packet(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes))
{
}

std::optional<EthHeader>
Packet::eth() const
{
    EthHeader h;
    if (!readEth(bytes_.data(), bytes_.size(), h))
        return std::nullopt;
    return h;
}

std::optional<Ipv4Header>
Packet::ipv4() const
{
    if (bytes_.size() < ethHeaderLen)
        return std::nullopt;
    Ipv4Header h;
    if (!readIpv4(bytes_.data() + ethHeaderLen,
                  bytes_.size() - ethHeaderLen, h)) {
        return std::nullopt;
    }
    return h;
}

std::optional<TcpHeader>
Packet::tcp() const
{
    auto ip = ipv4();
    if (!ip || ip->proto != static_cast<std::uint8_t>(IpProto::Tcp))
        return std::nullopt;
    std::size_t off = ethHeaderLen + ip->headerLen();
    if (bytes_.size() < off)
        return std::nullopt;
    TcpHeader h;
    if (!readTcp(bytes_.data() + off, bytes_.size() - off, h))
        return std::nullopt;
    return h;
}

std::optional<UdpHeader>
Packet::udp() const
{
    auto ip = ipv4();
    if (!ip || ip->proto != static_cast<std::uint8_t>(IpProto::Udp))
        return std::nullopt;
    std::size_t off = ethHeaderLen + ip->headerLen();
    if (bytes_.size() < off)
        return std::nullopt;
    UdpHeader h;
    if (!readUdp(bytes_.data() + off, bytes_.size() - off, h))
        return std::nullopt;
    return h;
}

std::optional<FiveTuple>
Packet::fiveTuple() const
{
    auto ip = ipv4();
    if (!ip)
        return std::nullopt;
    FiveTuple t;
    t.srcIp = ip->src;
    t.dstIp = ip->dst;
    t.proto = ip->proto;
    if (ip->proto == static_cast<std::uint8_t>(IpProto::Tcp)) {
        auto h = tcp();
        if (!h)
            return std::nullopt;
        t.srcPort = h->srcPort;
        t.dstPort = h->dstPort;
    } else if (ip->proto == static_cast<std::uint8_t>(IpProto::Udp)) {
        auto h = udp();
        if (!h)
            return std::nullopt;
        t.srcPort = h->srcPort;
        t.dstPort = h->dstPort;
    } else {
        return std::nullopt;
    }
    return t;
}

std::size_t
Packet::payloadOffset() const
{
    auto ip = ipv4();
    if (!ip)
        return bytes_.size();
    std::size_t off = ethHeaderLen + ip->headerLen();
    if (ip->proto == static_cast<std::uint8_t>(IpProto::Tcp)) {
        auto h = tcp();
        if (!h)
            return bytes_.size();
        off += std::size_t(h->dataOffset) * 4;
    } else if (ip->proto == static_cast<std::uint8_t>(IpProto::Udp)) {
        off += udpHeaderLen;
    } else {
        return bytes_.size();
    }
    return std::min(off, bytes_.size());
}

std::span<const std::uint8_t>
Packet::payload() const
{
    std::size_t off = payloadOffset();
    return {bytes_.data() + off, bytes_.size() - off};
}

void
Packet::rewriteAddressing(const FiveTuple &tuple)
{
    auto ip = ipv4();
    if (!ip)
        return;
    std::uint8_t *ipp = bytes_.data() + ethHeaderLen;
    storeBe32(ipp + 12, tuple.srcIp.value);
    storeBe32(ipp + 16, tuple.dstIp.value);
    std::size_t l4off = ethHeaderLen + ip->headerLen();
    if (bytes_.size() >= l4off + 4 &&
        (ip->proto == static_cast<std::uint8_t>(IpProto::Tcp) ||
         ip->proto == static_cast<std::uint8_t>(IpProto::Udp))) {
        storeBe16(bytes_.data() + l4off, tuple.srcPort);
        storeBe16(bytes_.data() + l4off + 2, tuple.dstPort);
    }
    storeBe16(ipp + 10, 0);
    storeBe16(ipp + 10, internetChecksum(ipp, ip->headerLen()));
}

bool
Packet::decrementTtl()
{
    auto ip = ipv4();
    if (!ip || ip->ttl <= 1)
        return false;
    std::uint8_t *ipp = bytes_.data() + ethHeaderLen;
    ipp[8] = static_cast<std::uint8_t>(ip->ttl - 1);
    storeBe16(ipp + 10, 0);
    storeBe16(ipp + 10, internetChecksum(ipp, ip->headerLen()));
    return true;
}

bool
Packet::ipv4ChecksumOk() const
{
    auto ip = ipv4();
    if (!ip)
        return false;
    return internetChecksum(bytes_.data() + ethHeaderLen,
                            ip->headerLen()) == 0;
}

Packet
PacketBuilder::build(const FiveTuple &tuple,
                     std::span<const std::uint8_t> payload,
                     std::uint16_t ipId)
{
    const bool is_tcp =
        tuple.proto == static_cast<std::uint8_t>(IpProto::Tcp);
    const std::size_t l4len = is_tcp ? tcpHeaderLen : udpHeaderLen;
    const std::size_t ip_total = ipv4HeaderLen + l4len + payload.size();
    std::vector<std::uint8_t> buf(ethHeaderLen + ip_total);

    EthHeader eth;
    eth.src = MacAddr::fromId(tuple.srcIp.value);
    eth.dst = MacAddr::fromId(tuple.dstIp.value);
    writeEth(buf.data(), eth);

    Ipv4Header ip;
    ip.totalLen = static_cast<std::uint16_t>(ip_total);
    ip.id = ipId;
    ip.proto = tuple.proto;
    ip.src = tuple.srcIp;
    ip.dst = tuple.dstIp;
    writeIpv4(buf.data() + ethHeaderLen, ip);

    std::uint8_t *l4 = buf.data() + ethHeaderLen + ipv4HeaderLen;
    if (is_tcp) {
        TcpHeader t;
        t.srcPort = tuple.srcPort;
        t.dstPort = tuple.dstPort;
        t.flags = 0x18; // PSH|ACK
        writeTcp(l4, t);
    } else {
        UdpHeader u;
        u.srcPort = tuple.srcPort;
        u.dstPort = tuple.dstPort;
        u.length = static_cast<std::uint16_t>(udpHeaderLen +
                                              payload.size());
        writeUdp(l4, u);
    }
    std::copy(payload.begin(), payload.end(), l4 + l4len);
    return Packet(std::move(buf));
}

std::size_t
PacketBuilder::frameSize(std::size_t payload_len, IpProto proto)
{
    std::size_t l4 =
        proto == IpProto::Tcp ? tcpHeaderLen : udpHeaderLen;
    return ethHeaderLen + ipv4HeaderLen + l4 + payload_len;
}

std::size_t
PacketBuilder::payloadForFrame(std::size_t frame_len, IpProto proto)
{
    std::size_t overhead = frameSize(0, proto);
    return frame_len > overhead ? frame_len - overhead : 0;
}

} // namespace tomur::net
