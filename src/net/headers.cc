#include "net/headers.hh"

#include "common/strutil.hh"

namespace tomur::net {

std::string
MacAddr::toString() const
{
    return strf("%02x:%02x:%02x:%02x:%02x:%02x", bytes[0], bytes[1],
                bytes[2], bytes[3], bytes[4], bytes[5]);
}

MacAddr
MacAddr::fromId(std::uint64_t id)
{
    MacAddr m;
    m.bytes[0] = 0x02; // locally administered
    for (int i = 1; i < 6; ++i)
        m.bytes[i] = static_cast<std::uint8_t>(id >> (8 * (5 - i)));
    return m;
}

std::string
Ipv4Addr::toString() const
{
    return strf("%u.%u.%u.%u", (value >> 24) & 0xff, (value >> 16) & 0xff,
                (value >> 8) & 0xff, value & 0xff);
}

Ipv4Addr
Ipv4Addr::fromOctets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
{
    return Ipv4Addr{(std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
                    (std::uint32_t(c) << 8) | d};
}

std::uint64_t
FiveTuple::hash() const
{
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
    };
    mix(srcIp.value);
    mix(dstIp.value);
    mix((std::uint64_t(srcPort) << 32) | (std::uint64_t(dstPort) << 16) |
        proto);
    return h;
}

std::string
FiveTuple::toString() const
{
    return strf("%s:%u -> %s:%u proto=%u", srcIp.toString().c_str(),
                srcPort, dstIp.toString().c_str(), dstPort, proto);
}

std::uint16_t
loadBe16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t
loadBe32(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | p[3];
}

void
storeBe16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
}

void
storeBe32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

std::uint16_t
internetChecksum(const std::uint8_t *data, std::size_t len)
{
    std::uint32_t sum = 0;
    while (len > 1) {
        sum += loadBe16(data);
        data += 2;
        len -= 2;
    }
    if (len)
        sum += std::uint32_t(*data) << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum);
}

void
writeEth(std::uint8_t *p, const EthHeader &h)
{
    for (int i = 0; i < 6; ++i)
        p[i] = h.dst.bytes[i];
    for (int i = 0; i < 6; ++i)
        p[6 + i] = h.src.bytes[i];
    storeBe16(p + 12, h.etherType);
}

void
writeIpv4(std::uint8_t *p, const Ipv4Header &h)
{
    p[0] = h.versionIhl;
    p[1] = h.tos;
    storeBe16(p + 2, h.totalLen);
    storeBe16(p + 4, h.id);
    storeBe16(p + 6, h.flagsFrag);
    p[8] = h.ttl;
    p[9] = h.proto;
    storeBe16(p + 10, 0); // checksum placeholder
    storeBe32(p + 12, h.src.value);
    storeBe32(p + 16, h.dst.value);
    storeBe16(p + 10, internetChecksum(p, ipv4HeaderLen));
}

void
writeTcp(std::uint8_t *p, const TcpHeader &h)
{
    storeBe16(p, h.srcPort);
    storeBe16(p + 2, h.dstPort);
    storeBe32(p + 4, h.seq);
    storeBe32(p + 8, h.ack);
    p[12] = static_cast<std::uint8_t>(h.dataOffset << 4);
    p[13] = h.flags;
    storeBe16(p + 14, h.window);
    storeBe16(p + 16, h.checksum);
    storeBe16(p + 18, h.urgent);
}

void
writeUdp(std::uint8_t *p, const UdpHeader &h)
{
    storeBe16(p, h.srcPort);
    storeBe16(p + 2, h.dstPort);
    storeBe16(p + 4, h.length);
    storeBe16(p + 6, h.checksum);
}

bool
readEth(const std::uint8_t *p, std::size_t len, EthHeader &out)
{
    if (len < ethHeaderLen)
        return false;
    for (int i = 0; i < 6; ++i)
        out.dst.bytes[i] = p[i];
    for (int i = 0; i < 6; ++i)
        out.src.bytes[i] = p[6 + i];
    out.etherType = loadBe16(p + 12);
    return true;
}

bool
readIpv4(const std::uint8_t *p, std::size_t len, Ipv4Header &out)
{
    if (len < ipv4HeaderLen)
        return false;
    out.versionIhl = p[0];
    out.tos = p[1];
    out.totalLen = loadBe16(p + 2);
    out.id = loadBe16(p + 4);
    out.flagsFrag = loadBe16(p + 6);
    out.ttl = p[8];
    out.proto = p[9];
    out.checksum = loadBe16(p + 10);
    out.src.value = loadBe32(p + 12);
    out.dst.value = loadBe32(p + 16);
    return (out.versionIhl >> 4) == 4 && out.headerLen() >= ipv4HeaderLen;
}

bool
readTcp(const std::uint8_t *p, std::size_t len, TcpHeader &out)
{
    if (len < tcpHeaderLen)
        return false;
    out.srcPort = loadBe16(p);
    out.dstPort = loadBe16(p + 2);
    out.seq = loadBe32(p + 4);
    out.ack = loadBe32(p + 8);
    out.dataOffset = p[12] >> 4;
    out.flags = p[13];
    out.window = loadBe16(p + 14);
    out.checksum = loadBe16(p + 16);
    out.urgent = loadBe16(p + 18);
    return true;
}

bool
readUdp(const std::uint8_t *p, std::size_t len, UdpHeader &out)
{
    if (len < udpHeaderLen)
        return false;
    out.srcPort = loadBe16(p);
    out.dstPort = loadBe16(p + 2);
    out.length = loadBe16(p + 4);
    out.checksum = loadBe16(p + 6);
    return true;
}

} // namespace tomur::net
