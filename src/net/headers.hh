/**
 * @file
 * Wire-format protocol headers (Ethernet/IPv4/TCP/UDP) and flow keys.
 *
 * Headers are plain structs in host byte order; serialization to and
 * from big-endian wire format is explicit so that network functions
 * genuinely parse packet bytes.
 */

#ifndef TOMUR_NET_HEADERS_HH
#define TOMUR_NET_HEADERS_HH

#include <array>
#include <cstdint>
#include <cstddef>
#include <functional>
#include <string>

namespace tomur::net {

/** Ethernet header length in bytes. */
constexpr std::size_t ethHeaderLen = 14;
/** IPv4 header length without options. */
constexpr std::size_t ipv4HeaderLen = 20;
/** TCP header length without options. */
constexpr std::size_t tcpHeaderLen = 20;
/** UDP header length. */
constexpr std::size_t udpHeaderLen = 8;

/** EtherType for IPv4. */
constexpr std::uint16_t etherTypeIpv4 = 0x0800;

/** IP protocol numbers used by the NFs. */
enum class IpProto : std::uint8_t
{
    Icmp = 1,
    Tcp = 6,
    Udp = 17,
};

/** 48-bit MAC address. */
struct MacAddr
{
    std::array<std::uint8_t, 6> bytes{};

    bool operator==(const MacAddr &o) const = default;

    /** "aa:bb:cc:dd:ee:ff" rendering. */
    std::string toString() const;

    /** Derive a deterministic MAC from an integer id. */
    static MacAddr fromId(std::uint64_t id);
};

/** IPv4 address in host order. */
struct Ipv4Addr
{
    std::uint32_t value = 0;

    bool operator==(const Ipv4Addr &o) const = default;
    auto operator<=>(const Ipv4Addr &o) const = default;

    /** Dotted-quad rendering. */
    std::string toString() const;

    /** Build from four octets a.b.c.d. */
    static Ipv4Addr fromOctets(std::uint8_t a, std::uint8_t b,
                               std::uint8_t c, std::uint8_t d);
};

/** Ethernet header (host-order fields). */
struct EthHeader
{
    MacAddr dst;
    MacAddr src;
    std::uint16_t etherType = etherTypeIpv4;
};

/** IPv4 header without options (host-order fields). */
struct Ipv4Header
{
    std::uint8_t versionIhl = 0x45;
    std::uint8_t tos = 0;
    std::uint16_t totalLen = 0;
    std::uint16_t id = 0;
    std::uint16_t flagsFrag = 0;
    std::uint8_t ttl = 64;
    std::uint8_t proto = static_cast<std::uint8_t>(IpProto::Udp);
    std::uint16_t checksum = 0;
    Ipv4Addr src;
    Ipv4Addr dst;

    /** Header length in bytes derived from IHL. */
    std::size_t headerLen() const { return (versionIhl & 0x0f) * 4u; }

    /** "more fragments" flag. */
    bool moreFragments() const { return flagsFrag & 0x2000; }

    /** Fragment offset in 8-byte units. */
    std::uint16_t fragOffset() const { return flagsFrag & 0x1fff; }
};

/** TCP header without options (host-order fields). */
struct TcpHeader
{
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint8_t dataOffset = 5; ///< in 32-bit words
    std::uint8_t flags = 0;
    std::uint16_t window = 0xffff;
    std::uint16_t checksum = 0;
    std::uint16_t urgent = 0;
};

/** UDP header (host-order fields). */
struct UdpHeader
{
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint16_t length = 0;
    std::uint16_t checksum = 0;
};

/** Canonical 5-tuple flow key. */
struct FiveTuple
{
    Ipv4Addr srcIp;
    Ipv4Addr dstIp;
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint8_t proto = static_cast<std::uint8_t>(IpProto::Udp);

    bool operator==(const FiveTuple &o) const = default;

    /** 64-bit mixing hash (stable across runs). */
    std::uint64_t hash() const;

    /** Human-readable rendering. */
    std::string toString() const;
};

/** Big-endian helpers. */
std::uint16_t loadBe16(const std::uint8_t *p);
std::uint32_t loadBe32(const std::uint8_t *p);
void storeBe16(std::uint8_t *p, std::uint16_t v);
void storeBe32(std::uint8_t *p, std::uint32_t v);

/** RFC 1071 Internet checksum over a byte range. */
std::uint16_t internetChecksum(const std::uint8_t *data, std::size_t len);

/** Serialize headers to wire format (buffers must be large enough). */
void writeEth(std::uint8_t *p, const EthHeader &h);
void writeIpv4(std::uint8_t *p, const Ipv4Header &h);
void writeTcp(std::uint8_t *p, const TcpHeader &h);
void writeUdp(std::uint8_t *p, const UdpHeader &h);

/** Parse headers from wire format. @return false on truncation. */
bool readEth(const std::uint8_t *p, std::size_t len, EthHeader &out);
bool readIpv4(const std::uint8_t *p, std::size_t len, Ipv4Header &out);
bool readTcp(const std::uint8_t *p, std::size_t len, TcpHeader &out);
bool readUdp(const std::uint8_t *p, std::size_t len, UdpHeader &out);

} // namespace tomur::net

template <>
struct std::hash<tomur::net::FiveTuple>
{
    std::size_t
    operator()(const tomur::net::FiveTuple &t) const noexcept
    {
        return static_cast<std::size_t>(t.hash());
    }
};

#endif // TOMUR_NET_HEADERS_HH
