# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_regex[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_framework[1]_include.cmake")
include("/root/repo/build/tests/test_nfs[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_tomur[1]_include.cmake")
include("/root/repo/build/tests/test_slomo[1]_include.cmake")
include("/root/repo/build/tests/test_usecases[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_config_aware[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
