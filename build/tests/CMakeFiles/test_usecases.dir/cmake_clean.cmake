file(REMOVE_RECURSE
  "CMakeFiles/test_usecases.dir/test_usecases.cc.o"
  "CMakeFiles/test_usecases.dir/test_usecases.cc.o.d"
  "test_usecases"
  "test_usecases.pdb"
  "test_usecases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
