# Empty compiler generated dependencies file for test_usecases.
# This may be replaced when dependencies are built.
