file(REMOVE_RECURSE
  "CMakeFiles/test_config_aware.dir/test_config_aware.cc.o"
  "CMakeFiles/test_config_aware.dir/test_config_aware.cc.o.d"
  "test_config_aware"
  "test_config_aware.pdb"
  "test_config_aware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
