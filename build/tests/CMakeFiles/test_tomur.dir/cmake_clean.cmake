file(REMOVE_RECURSE
  "CMakeFiles/test_tomur.dir/test_tomur.cc.o"
  "CMakeFiles/test_tomur.dir/test_tomur.cc.o.d"
  "test_tomur"
  "test_tomur.pdb"
  "test_tomur[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tomur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
