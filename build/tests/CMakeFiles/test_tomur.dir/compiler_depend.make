# Empty compiler generated dependencies file for test_tomur.
# This may be replaced when dependencies are built.
