# Empty dependencies file for test_slomo.
# This may be replaced when dependencies are built.
