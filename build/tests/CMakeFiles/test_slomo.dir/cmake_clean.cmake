file(REMOVE_RECURSE
  "CMakeFiles/test_slomo.dir/test_slomo.cc.o"
  "CMakeFiles/test_slomo.dir/test_slomo.cc.o.d"
  "test_slomo"
  "test_slomo.pdb"
  "test_slomo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slomo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
