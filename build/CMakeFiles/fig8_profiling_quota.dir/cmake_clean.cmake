file(REMOVE_RECURSE
  "CMakeFiles/fig8_profiling_quota.dir/bench/fig8_profiling_quota.cc.o"
  "CMakeFiles/fig8_profiling_quota.dir/bench/fig8_profiling_quota.cc.o.d"
  "bench/fig8_profiling_quota"
  "bench/fig8_profiling_quota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_profiling_quota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
