# Empty dependencies file for fig8_profiling_quota.
# This may be replaced when dependencies are built.
