# Empty dependencies file for ext_config_aware.
# This may be replaced when dependencies are built.
