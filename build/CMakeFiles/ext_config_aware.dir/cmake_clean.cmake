file(REMOVE_RECURSE
  "CMakeFiles/ext_config_aware.dir/bench/ext_config_aware.cc.o"
  "CMakeFiles/ext_config_aware.dir/bench/ext_config_aware.cc.o.d"
  "bench/ext_config_aware"
  "bench/ext_config_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_config_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
