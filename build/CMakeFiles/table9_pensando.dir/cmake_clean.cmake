file(REMOVE_RECURSE
  "CMakeFiles/table9_pensando.dir/bench/table9_pensando.cc.o"
  "CMakeFiles/table9_pensando.dir/bench/table9_pensando.cc.o.d"
  "bench/table9_pensando"
  "bench/table9_pensando.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_pensando.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
