# Empty compiler generated dependencies file for table9_pensando.
# This may be replaced when dependencies are built.
