file(REMOVE_RECURSE
  "CMakeFiles/fig6_traffic_sensitivity.dir/bench/fig6_traffic_sensitivity.cc.o"
  "CMakeFiles/fig6_traffic_sensitivity.dir/bench/fig6_traffic_sensitivity.cc.o.d"
  "bench/fig6_traffic_sensitivity"
  "bench/fig6_traffic_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_traffic_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
