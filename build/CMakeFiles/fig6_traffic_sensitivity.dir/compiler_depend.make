# Empty compiler generated dependencies file for fig6_traffic_sensitivity.
# This may be replaced when dependencies are built.
