# Empty compiler generated dependencies file for table5_traffic_aware.
# This may be replaced when dependencies are built.
