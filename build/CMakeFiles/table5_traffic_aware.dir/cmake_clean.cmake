file(REMOVE_RECURSE
  "CMakeFiles/table5_traffic_aware.dir/bench/table5_traffic_aware.cc.o"
  "CMakeFiles/table5_traffic_aware.dir/bench/table5_traffic_aware.cc.o.d"
  "bench/table5_traffic_aware"
  "bench/table5_traffic_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_traffic_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
