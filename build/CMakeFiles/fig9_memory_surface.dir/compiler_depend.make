# Empty compiler generated dependencies file for fig9_memory_surface.
# This may be replaced when dependencies are built.
