file(REMOVE_RECURSE
  "CMakeFiles/fig9_memory_surface.dir/bench/fig9_memory_surface.cc.o"
  "CMakeFiles/fig9_memory_surface.dir/bench/fig9_memory_surface.cc.o.d"
  "bench/fig9_memory_surface"
  "bench/fig9_memory_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_memory_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
