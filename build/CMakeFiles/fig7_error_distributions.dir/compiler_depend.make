# Empty compiler generated dependencies file for fig7_error_distributions.
# This may be replaced when dependencies are built.
