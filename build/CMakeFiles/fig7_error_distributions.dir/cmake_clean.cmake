file(REMOVE_RECURSE
  "CMakeFiles/fig7_error_distributions.dir/bench/fig7_error_distributions.cc.o"
  "CMakeFiles/fig7_error_distributions.dir/bench/fig7_error_distributions.cc.o.d"
  "bench/fig7_error_distributions"
  "bench/fig7_error_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_error_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
