# Empty dependencies file for table3_multiresource.
# This may be replaced when dependencies are built.
