file(REMOVE_RECURSE
  "CMakeFiles/table3_multiresource.dir/bench/table3_multiresource.cc.o"
  "CMakeFiles/table3_multiresource.dir/bench/table3_multiresource.cc.o.d"
  "bench/table3_multiresource"
  "bench/table3_multiresource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_multiresource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
