# Empty compiler generated dependencies file for table4_composition.
# This may be replaced when dependencies are built.
