file(REMOVE_RECURSE
  "CMakeFiles/table4_composition.dir/bench/table4_composition.cc.o"
  "CMakeFiles/table4_composition.dir/bench/table4_composition.cc.o.d"
  "bench/table4_composition"
  "bench/table4_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
