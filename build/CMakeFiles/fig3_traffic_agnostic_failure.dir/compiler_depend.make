# Empty compiler generated dependencies file for fig3_traffic_agnostic_failure.
# This may be replaced when dependencies are built.
