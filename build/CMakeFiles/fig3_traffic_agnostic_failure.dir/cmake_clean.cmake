file(REMOVE_RECURSE
  "CMakeFiles/fig3_traffic_agnostic_failure.dir/bench/fig3_traffic_agnostic_failure.cc.o"
  "CMakeFiles/fig3_traffic_agnostic_failure.dir/bench/fig3_traffic_agnostic_failure.cc.o.d"
  "bench/fig3_traffic_agnostic_failure"
  "bench/fig3_traffic_agnostic_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_traffic_agnostic_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
