file(REMOVE_RECURSE
  "CMakeFiles/fig5_execution_patterns.dir/bench/fig5_execution_patterns.cc.o"
  "CMakeFiles/fig5_execution_patterns.dir/bench/fig5_execution_patterns.cc.o.d"
  "bench/fig5_execution_patterns"
  "bench/fig5_execution_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_execution_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
