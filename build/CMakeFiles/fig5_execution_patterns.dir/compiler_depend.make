# Empty compiler generated dependencies file for fig5_execution_patterns.
# This may be replaced when dependencies are built.
