# Empty dependencies file for fig4_regex_equilibrium.
# This may be replaced when dependencies are built.
