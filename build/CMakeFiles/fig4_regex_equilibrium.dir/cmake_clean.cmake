file(REMOVE_RECURSE
  "CMakeFiles/fig4_regex_equilibrium.dir/bench/fig4_regex_equilibrium.cc.o"
  "CMakeFiles/fig4_regex_equilibrium.dir/bench/fig4_regex_equilibrium.cc.o.d"
  "bench/fig4_regex_equilibrium"
  "bench/fig4_regex_equilibrium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_regex_equilibrium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
