file(REMOVE_RECURSE
  "CMakeFiles/table12_regex_model.dir/bench/table12_regex_model.cc.o"
  "CMakeFiles/table12_regex_model.dir/bench/table12_regex_model.cc.o.d"
  "bench/table12_regex_model"
  "bench/table12_regex_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_regex_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
