# Empty compiler generated dependencies file for table12_regex_model.
# This may be replaced when dependencies are built.
