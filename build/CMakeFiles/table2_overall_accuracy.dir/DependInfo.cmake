
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_overall_accuracy.cc" "CMakeFiles/table2_overall_accuracy.dir/bench/table2_overall_accuracy.cc.o" "gcc" "CMakeFiles/table2_overall_accuracy.dir/bench/table2_overall_accuracy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/usecases/CMakeFiles/tomur_usecases.dir/DependInfo.cmake"
  "/root/repo/build/src/slomo/CMakeFiles/tomur_slomo.dir/DependInfo.cmake"
  "/root/repo/build/src/tomur/CMakeFiles/tomur_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/tomur_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tomur_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/tomur_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/framework/CMakeFiles/tomur_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/tomur_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/tomur_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tomur_net.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/tomur_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tomur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
