file(REMOVE_RECURSE
  "CMakeFiles/table2_overall_accuracy.dir/bench/table2_overall_accuracy.cc.o"
  "CMakeFiles/table2_overall_accuracy.dir/bench/table2_overall_accuracy.cc.o.d"
  "bench/table2_overall_accuracy"
  "bench/table2_overall_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_overall_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
