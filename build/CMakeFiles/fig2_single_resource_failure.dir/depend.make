# Empty dependencies file for fig2_single_resource_failure.
# This may be replaced when dependencies are built.
