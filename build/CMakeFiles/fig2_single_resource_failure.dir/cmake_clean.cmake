file(REMOVE_RECURSE
  "CMakeFiles/fig2_single_resource_failure.dir/bench/fig2_single_resource_failure.cc.o"
  "CMakeFiles/fig2_single_resource_failure.dir/bench/fig2_single_resource_failure.cc.o.d"
  "bench/fig2_single_resource_failure"
  "bench/fig2_single_resource_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_single_resource_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
