# Empty compiler generated dependencies file for ext_crypto_generality.
# This may be replaced when dependencies are built.
