file(REMOVE_RECURSE
  "CMakeFiles/ext_crypto_generality.dir/bench/ext_crypto_generality.cc.o"
  "CMakeFiles/ext_crypto_generality.dir/bench/ext_crypto_generality.cc.o.d"
  "bench/ext_crypto_generality"
  "bench/ext_crypto_generality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_crypto_generality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
