file(REMOVE_RECURSE
  "CMakeFiles/table7_diagnosis.dir/bench/table7_diagnosis.cc.o"
  "CMakeFiles/table7_diagnosis.dir/bench/table7_diagnosis.cc.o.d"
  "bench/table7_diagnosis"
  "bench/table7_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
