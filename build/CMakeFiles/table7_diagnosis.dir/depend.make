# Empty dependencies file for table7_diagnosis.
# This may be replaced when dependencies are built.
