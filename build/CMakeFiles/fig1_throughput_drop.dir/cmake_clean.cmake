file(REMOVE_RECURSE
  "CMakeFiles/fig1_throughput_drop.dir/bench/fig1_throughput_drop.cc.o"
  "CMakeFiles/fig1_throughput_drop.dir/bench/fig1_throughput_drop.cc.o.d"
  "bench/fig1_throughput_drop"
  "bench/fig1_throughput_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_throughput_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
