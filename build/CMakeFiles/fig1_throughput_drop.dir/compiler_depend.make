# Empty compiler generated dependencies file for fig1_throughput_drop.
# This may be replaced when dependencies are built.
