file(REMOVE_RECURSE
  "CMakeFiles/table8_adaptive_profiling.dir/bench/table8_adaptive_profiling.cc.o"
  "CMakeFiles/table8_adaptive_profiling.dir/bench/table8_adaptive_profiling.cc.o.d"
  "bench/table8_adaptive_profiling"
  "bench/table8_adaptive_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_adaptive_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
