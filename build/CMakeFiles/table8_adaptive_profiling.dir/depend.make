# Empty dependencies file for table8_adaptive_profiling.
# This may be replaced when dependencies are built.
