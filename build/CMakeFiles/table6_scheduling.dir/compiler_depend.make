# Empty compiler generated dependencies file for table6_scheduling.
# This may be replaced when dependencies are built.
