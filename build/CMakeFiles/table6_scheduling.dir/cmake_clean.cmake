file(REMOVE_RECURSE
  "CMakeFiles/table6_scheduling.dir/bench/table6_scheduling.cc.o"
  "CMakeFiles/table6_scheduling.dir/bench/table6_scheduling.cc.o.d"
  "bench/table6_scheduling"
  "bench/table6_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
