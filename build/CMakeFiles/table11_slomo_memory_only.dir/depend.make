# Empty dependencies file for table11_slomo_memory_only.
# This may be replaced when dependencies are built.
