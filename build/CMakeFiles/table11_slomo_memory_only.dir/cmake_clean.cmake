file(REMOVE_RECURSE
  "CMakeFiles/table11_slomo_memory_only.dir/bench/table11_slomo_memory_only.cc.o"
  "CMakeFiles/table11_slomo_memory_only.dir/bench/table11_slomo_memory_only.cc.o.d"
  "bench/table11_slomo_memory_only"
  "bench/table11_slomo_memory_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_slomo_memory_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
