# Empty dependencies file for tomur_common.
# This may be replaced when dependencies are built.
