file(REMOVE_RECURSE
  "libtomur_common.a"
)
