file(REMOVE_RECURSE
  "CMakeFiles/tomur_common.dir/logging.cc.o"
  "CMakeFiles/tomur_common.dir/logging.cc.o.d"
  "CMakeFiles/tomur_common.dir/rng.cc.o"
  "CMakeFiles/tomur_common.dir/rng.cc.o.d"
  "CMakeFiles/tomur_common.dir/stats.cc.o"
  "CMakeFiles/tomur_common.dir/stats.cc.o.d"
  "CMakeFiles/tomur_common.dir/strutil.cc.o"
  "CMakeFiles/tomur_common.dir/strutil.cc.o.d"
  "CMakeFiles/tomur_common.dir/table.cc.o"
  "CMakeFiles/tomur_common.dir/table.cc.o.d"
  "libtomur_common.a"
  "libtomur_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomur_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
