
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nfs/acl.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/acl.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/acl.cc.o.d"
  "/root/repo/src/nfs/bench_nfs.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/bench_nfs.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/bench_nfs.cc.o.d"
  "/root/repo/src/nfs/common_elements.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/common_elements.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/common_elements.cc.o.d"
  "/root/repo/src/nfs/firewall.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/firewall.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/firewall.cc.o.d"
  "/root/repo/src/nfs/flowclassifier.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/flowclassifier.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/flowclassifier.cc.o.d"
  "/root/repo/src/nfs/flowmonitor.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/flowmonitor.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/flowmonitor.cc.o.d"
  "/root/repo/src/nfs/flowstats.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/flowstats.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/flowstats.cc.o.d"
  "/root/repo/src/nfs/flowtracker.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/flowtracker.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/flowtracker.cc.o.d"
  "/root/repo/src/nfs/ipcomp.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/ipcomp.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/ipcomp.cc.o.d"
  "/root/repo/src/nfs/iprouter.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/iprouter.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/iprouter.cc.o.d"
  "/root/repo/src/nfs/ipsec.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/ipsec.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/ipsec.cc.o.d"
  "/root/repo/src/nfs/iptunnel.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/iptunnel.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/iptunnel.cc.o.d"
  "/root/repo/src/nfs/lpm.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/lpm.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/lpm.cc.o.d"
  "/root/repo/src/nfs/nat.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/nat.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/nat.cc.o.d"
  "/root/repo/src/nfs/nids.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/nids.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/nids.cc.o.d"
  "/root/repo/src/nfs/packetfilter.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/packetfilter.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/packetfilter.cc.o.d"
  "/root/repo/src/nfs/registry.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/registry.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/registry.cc.o.d"
  "/root/repo/src/nfs/synthetic.cc" "src/nfs/CMakeFiles/tomur_nfs.dir/synthetic.cc.o" "gcc" "src/nfs/CMakeFiles/tomur_nfs.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/framework/CMakeFiles/tomur_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/tomur_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/tomur_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tomur_net.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/tomur_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tomur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
