# Empty dependencies file for tomur_nfs.
# This may be replaced when dependencies are built.
