file(REMOVE_RECURSE
  "libtomur_nfs.a"
)
