file(REMOVE_RECURSE
  "libtomur_usecases.a"
)
