# Empty compiler generated dependencies file for tomur_usecases.
# This may be replaced when dependencies are built.
