file(REMOVE_RECURSE
  "CMakeFiles/tomur_usecases.dir/diagnosis.cc.o"
  "CMakeFiles/tomur_usecases.dir/diagnosis.cc.o.d"
  "CMakeFiles/tomur_usecases.dir/placement.cc.o"
  "CMakeFiles/tomur_usecases.dir/placement.cc.o.d"
  "libtomur_usecases.a"
  "libtomur_usecases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomur_usecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
