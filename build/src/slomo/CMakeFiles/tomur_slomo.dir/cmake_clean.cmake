file(REMOVE_RECURSE
  "CMakeFiles/tomur_slomo.dir/slomo.cc.o"
  "CMakeFiles/tomur_slomo.dir/slomo.cc.o.d"
  "libtomur_slomo.a"
  "libtomur_slomo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomur_slomo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
