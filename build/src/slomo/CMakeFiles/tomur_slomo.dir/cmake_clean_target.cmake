file(REMOVE_RECURSE
  "libtomur_slomo.a"
)
