# Empty compiler generated dependencies file for tomur_slomo.
# This may be replaced when dependencies are built.
