# Empty compiler generated dependencies file for tomur_regex.
# This may be replaced when dependencies are built.
