
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regex/ast.cc" "src/regex/CMakeFiles/tomur_regex.dir/ast.cc.o" "gcc" "src/regex/CMakeFiles/tomur_regex.dir/ast.cc.o.d"
  "/root/repo/src/regex/dfa.cc" "src/regex/CMakeFiles/tomur_regex.dir/dfa.cc.o" "gcc" "src/regex/CMakeFiles/tomur_regex.dir/dfa.cc.o.d"
  "/root/repo/src/regex/generator.cc" "src/regex/CMakeFiles/tomur_regex.dir/generator.cc.o" "gcc" "src/regex/CMakeFiles/tomur_regex.dir/generator.cc.o.d"
  "/root/repo/src/regex/matcher.cc" "src/regex/CMakeFiles/tomur_regex.dir/matcher.cc.o" "gcc" "src/regex/CMakeFiles/tomur_regex.dir/matcher.cc.o.d"
  "/root/repo/src/regex/nfa.cc" "src/regex/CMakeFiles/tomur_regex.dir/nfa.cc.o" "gcc" "src/regex/CMakeFiles/tomur_regex.dir/nfa.cc.o.d"
  "/root/repo/src/regex/parser.cc" "src/regex/CMakeFiles/tomur_regex.dir/parser.cc.o" "gcc" "src/regex/CMakeFiles/tomur_regex.dir/parser.cc.o.d"
  "/root/repo/src/regex/ruleset.cc" "src/regex/CMakeFiles/tomur_regex.dir/ruleset.cc.o" "gcc" "src/regex/CMakeFiles/tomur_regex.dir/ruleset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tomur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
