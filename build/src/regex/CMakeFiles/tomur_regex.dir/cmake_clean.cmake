file(REMOVE_RECURSE
  "CMakeFiles/tomur_regex.dir/ast.cc.o"
  "CMakeFiles/tomur_regex.dir/ast.cc.o.d"
  "CMakeFiles/tomur_regex.dir/dfa.cc.o"
  "CMakeFiles/tomur_regex.dir/dfa.cc.o.d"
  "CMakeFiles/tomur_regex.dir/generator.cc.o"
  "CMakeFiles/tomur_regex.dir/generator.cc.o.d"
  "CMakeFiles/tomur_regex.dir/matcher.cc.o"
  "CMakeFiles/tomur_regex.dir/matcher.cc.o.d"
  "CMakeFiles/tomur_regex.dir/nfa.cc.o"
  "CMakeFiles/tomur_regex.dir/nfa.cc.o.d"
  "CMakeFiles/tomur_regex.dir/parser.cc.o"
  "CMakeFiles/tomur_regex.dir/parser.cc.o.d"
  "CMakeFiles/tomur_regex.dir/ruleset.cc.o"
  "CMakeFiles/tomur_regex.dir/ruleset.cc.o.d"
  "libtomur_regex.a"
  "libtomur_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomur_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
