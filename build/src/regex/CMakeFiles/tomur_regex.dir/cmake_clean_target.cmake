file(REMOVE_RECURSE
  "libtomur_regex.a"
)
