# Empty compiler generated dependencies file for tomur_hw.
# This may be replaced when dependencies are built.
