file(REMOVE_RECURSE
  "libtomur_hw.a"
)
