file(REMOVE_RECURSE
  "CMakeFiles/tomur_hw.dir/accel.cc.o"
  "CMakeFiles/tomur_hw.dir/accel.cc.o.d"
  "CMakeFiles/tomur_hw.dir/accel_des.cc.o"
  "CMakeFiles/tomur_hw.dir/accel_des.cc.o.d"
  "CMakeFiles/tomur_hw.dir/cache.cc.o"
  "CMakeFiles/tomur_hw.dir/cache.cc.o.d"
  "CMakeFiles/tomur_hw.dir/config.cc.o"
  "CMakeFiles/tomur_hw.dir/config.cc.o.d"
  "CMakeFiles/tomur_hw.dir/counters.cc.o"
  "CMakeFiles/tomur_hw.dir/counters.cc.o.d"
  "CMakeFiles/tomur_hw.dir/dram.cc.o"
  "CMakeFiles/tomur_hw.dir/dram.cc.o.d"
  "libtomur_hw.a"
  "libtomur_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomur_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
