
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/accel.cc" "src/hw/CMakeFiles/tomur_hw.dir/accel.cc.o" "gcc" "src/hw/CMakeFiles/tomur_hw.dir/accel.cc.o.d"
  "/root/repo/src/hw/accel_des.cc" "src/hw/CMakeFiles/tomur_hw.dir/accel_des.cc.o" "gcc" "src/hw/CMakeFiles/tomur_hw.dir/accel_des.cc.o.d"
  "/root/repo/src/hw/cache.cc" "src/hw/CMakeFiles/tomur_hw.dir/cache.cc.o" "gcc" "src/hw/CMakeFiles/tomur_hw.dir/cache.cc.o.d"
  "/root/repo/src/hw/config.cc" "src/hw/CMakeFiles/tomur_hw.dir/config.cc.o" "gcc" "src/hw/CMakeFiles/tomur_hw.dir/config.cc.o.d"
  "/root/repo/src/hw/counters.cc" "src/hw/CMakeFiles/tomur_hw.dir/counters.cc.o" "gcc" "src/hw/CMakeFiles/tomur_hw.dir/counters.cc.o.d"
  "/root/repo/src/hw/dram.cc" "src/hw/CMakeFiles/tomur_hw.dir/dram.cc.o" "gcc" "src/hw/CMakeFiles/tomur_hw.dir/dram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tomur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
