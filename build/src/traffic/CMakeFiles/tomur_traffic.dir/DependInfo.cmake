
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/generator.cc" "src/traffic/CMakeFiles/tomur_traffic.dir/generator.cc.o" "gcc" "src/traffic/CMakeFiles/tomur_traffic.dir/generator.cc.o.d"
  "/root/repo/src/traffic/profile.cc" "src/traffic/CMakeFiles/tomur_traffic.dir/profile.cc.o" "gcc" "src/traffic/CMakeFiles/tomur_traffic.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tomur_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tomur_net.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/tomur_regex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
