file(REMOVE_RECURSE
  "CMakeFiles/tomur_traffic.dir/generator.cc.o"
  "CMakeFiles/tomur_traffic.dir/generator.cc.o.d"
  "CMakeFiles/tomur_traffic.dir/profile.cc.o"
  "CMakeFiles/tomur_traffic.dir/profile.cc.o.d"
  "libtomur_traffic.a"
  "libtomur_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomur_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
