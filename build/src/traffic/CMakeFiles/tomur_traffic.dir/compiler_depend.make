# Empty compiler generated dependencies file for tomur_traffic.
# This may be replaced when dependencies are built.
