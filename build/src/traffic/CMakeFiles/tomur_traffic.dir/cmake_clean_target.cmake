file(REMOVE_RECURSE
  "libtomur_traffic.a"
)
