file(REMOVE_RECURSE
  "CMakeFiles/tomur_core.dir/accel_model.cc.o"
  "CMakeFiles/tomur_core.dir/accel_model.cc.o.d"
  "CMakeFiles/tomur_core.dir/adaptive.cc.o"
  "CMakeFiles/tomur_core.dir/adaptive.cc.o.d"
  "CMakeFiles/tomur_core.dir/composition.cc.o"
  "CMakeFiles/tomur_core.dir/composition.cc.o.d"
  "CMakeFiles/tomur_core.dir/config_aware.cc.o"
  "CMakeFiles/tomur_core.dir/config_aware.cc.o.d"
  "CMakeFiles/tomur_core.dir/contention.cc.o"
  "CMakeFiles/tomur_core.dir/contention.cc.o.d"
  "CMakeFiles/tomur_core.dir/memory_model.cc.o"
  "CMakeFiles/tomur_core.dir/memory_model.cc.o.d"
  "CMakeFiles/tomur_core.dir/predictor.cc.o"
  "CMakeFiles/tomur_core.dir/predictor.cc.o.d"
  "CMakeFiles/tomur_core.dir/profiler.cc.o"
  "CMakeFiles/tomur_core.dir/profiler.cc.o.d"
  "CMakeFiles/tomur_core.dir/serialize.cc.o"
  "CMakeFiles/tomur_core.dir/serialize.cc.o.d"
  "libtomur_core.a"
  "libtomur_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomur_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
