# Empty dependencies file for tomur_core.
# This may be replaced when dependencies are built.
