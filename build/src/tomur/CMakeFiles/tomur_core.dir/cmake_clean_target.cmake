file(REMOVE_RECURSE
  "libtomur_core.a"
)
