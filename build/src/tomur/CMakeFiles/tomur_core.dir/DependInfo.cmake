
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tomur/accel_model.cc" "src/tomur/CMakeFiles/tomur_core.dir/accel_model.cc.o" "gcc" "src/tomur/CMakeFiles/tomur_core.dir/accel_model.cc.o.d"
  "/root/repo/src/tomur/adaptive.cc" "src/tomur/CMakeFiles/tomur_core.dir/adaptive.cc.o" "gcc" "src/tomur/CMakeFiles/tomur_core.dir/adaptive.cc.o.d"
  "/root/repo/src/tomur/composition.cc" "src/tomur/CMakeFiles/tomur_core.dir/composition.cc.o" "gcc" "src/tomur/CMakeFiles/tomur_core.dir/composition.cc.o.d"
  "/root/repo/src/tomur/config_aware.cc" "src/tomur/CMakeFiles/tomur_core.dir/config_aware.cc.o" "gcc" "src/tomur/CMakeFiles/tomur_core.dir/config_aware.cc.o.d"
  "/root/repo/src/tomur/contention.cc" "src/tomur/CMakeFiles/tomur_core.dir/contention.cc.o" "gcc" "src/tomur/CMakeFiles/tomur_core.dir/contention.cc.o.d"
  "/root/repo/src/tomur/memory_model.cc" "src/tomur/CMakeFiles/tomur_core.dir/memory_model.cc.o" "gcc" "src/tomur/CMakeFiles/tomur_core.dir/memory_model.cc.o.d"
  "/root/repo/src/tomur/predictor.cc" "src/tomur/CMakeFiles/tomur_core.dir/predictor.cc.o" "gcc" "src/tomur/CMakeFiles/tomur_core.dir/predictor.cc.o.d"
  "/root/repo/src/tomur/profiler.cc" "src/tomur/CMakeFiles/tomur_core.dir/profiler.cc.o" "gcc" "src/tomur/CMakeFiles/tomur_core.dir/profiler.cc.o.d"
  "/root/repo/src/tomur/serialize.cc" "src/tomur/CMakeFiles/tomur_core.dir/serialize.cc.o" "gcc" "src/tomur/CMakeFiles/tomur_core.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/tomur_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tomur_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/tomur_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/framework/CMakeFiles/tomur_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/tomur_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/tomur_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tomur_net.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/tomur_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tomur_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
