# Empty compiler generated dependencies file for tomur_ml.
# This may be replaced when dependencies are built.
