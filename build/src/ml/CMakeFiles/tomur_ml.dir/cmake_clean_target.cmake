file(REMOVE_RECURSE
  "libtomur_ml.a"
)
