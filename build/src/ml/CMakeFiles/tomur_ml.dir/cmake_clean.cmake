file(REMOVE_RECURSE
  "CMakeFiles/tomur_ml.dir/dataset.cc.o"
  "CMakeFiles/tomur_ml.dir/dataset.cc.o.d"
  "CMakeFiles/tomur_ml.dir/gbr.cc.o"
  "CMakeFiles/tomur_ml.dir/gbr.cc.o.d"
  "CMakeFiles/tomur_ml.dir/linreg.cc.o"
  "CMakeFiles/tomur_ml.dir/linreg.cc.o.d"
  "CMakeFiles/tomur_ml.dir/metrics.cc.o"
  "CMakeFiles/tomur_ml.dir/metrics.cc.o.d"
  "CMakeFiles/tomur_ml.dir/serialize.cc.o"
  "CMakeFiles/tomur_ml.dir/serialize.cc.o.d"
  "CMakeFiles/tomur_ml.dir/tree.cc.o"
  "CMakeFiles/tomur_ml.dir/tree.cc.o.d"
  "libtomur_ml.a"
  "libtomur_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomur_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
