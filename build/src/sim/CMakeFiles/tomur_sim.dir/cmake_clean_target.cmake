file(REMOVE_RECURSE
  "libtomur_sim.a"
)
