file(REMOVE_RECURSE
  "CMakeFiles/tomur_sim.dir/testbed.cc.o"
  "CMakeFiles/tomur_sim.dir/testbed.cc.o.d"
  "libtomur_sim.a"
  "libtomur_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomur_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
