# Empty compiler generated dependencies file for tomur_sim.
# This may be replaced when dependencies are built.
