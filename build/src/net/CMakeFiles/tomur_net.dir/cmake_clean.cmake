file(REMOVE_RECURSE
  "CMakeFiles/tomur_net.dir/headers.cc.o"
  "CMakeFiles/tomur_net.dir/headers.cc.o.d"
  "CMakeFiles/tomur_net.dir/packet.cc.o"
  "CMakeFiles/tomur_net.dir/packet.cc.o.d"
  "libtomur_net.a"
  "libtomur_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomur_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
