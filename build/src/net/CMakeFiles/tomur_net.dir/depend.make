# Empty dependencies file for tomur_net.
# This may be replaced when dependencies are built.
