file(REMOVE_RECURSE
  "libtomur_net.a"
)
