# Empty dependencies file for tomur_framework.
# This may be replaced when dependencies are built.
