file(REMOVE_RECURSE
  "libtomur_framework.a"
)
