file(REMOVE_RECURSE
  "CMakeFiles/tomur_framework.dir/accel_dev.cc.o"
  "CMakeFiles/tomur_framework.dir/accel_dev.cc.o.d"
  "CMakeFiles/tomur_framework.dir/cost.cc.o"
  "CMakeFiles/tomur_framework.dir/cost.cc.o.d"
  "CMakeFiles/tomur_framework.dir/element.cc.o"
  "CMakeFiles/tomur_framework.dir/element.cc.o.d"
  "CMakeFiles/tomur_framework.dir/flow_table.cc.o"
  "CMakeFiles/tomur_framework.dir/flow_table.cc.o.d"
  "CMakeFiles/tomur_framework.dir/nf.cc.o"
  "CMakeFiles/tomur_framework.dir/nf.cc.o.d"
  "CMakeFiles/tomur_framework.dir/profile.cc.o"
  "CMakeFiles/tomur_framework.dir/profile.cc.o.d"
  "libtomur_framework.a"
  "libtomur_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomur_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
