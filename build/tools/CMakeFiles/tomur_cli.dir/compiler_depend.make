# Empty compiler generated dependencies file for tomur_cli.
# This may be replaced when dependencies are built.
