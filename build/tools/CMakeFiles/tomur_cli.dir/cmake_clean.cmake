file(REMOVE_RECURSE
  "CMakeFiles/tomur_cli.dir/tomur_cli.cc.o"
  "CMakeFiles/tomur_cli.dir/tomur_cli.cc.o.d"
  "tomur_cli"
  "tomur_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tomur_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
