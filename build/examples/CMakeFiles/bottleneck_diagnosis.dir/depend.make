# Empty dependencies file for bottleneck_diagnosis.
# This may be replaced when dependencies are built.
