file(REMOVE_RECURSE
  "CMakeFiles/bottleneck_diagnosis.dir/bottleneck_diagnosis.cpp.o"
  "CMakeFiles/bottleneck_diagnosis.dir/bottleneck_diagnosis.cpp.o.d"
  "bottleneck_diagnosis"
  "bottleneck_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
