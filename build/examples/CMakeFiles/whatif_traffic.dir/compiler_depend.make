# Empty compiler generated dependencies file for whatif_traffic.
# This may be replaced when dependencies are built.
