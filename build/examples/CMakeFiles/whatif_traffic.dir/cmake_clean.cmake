file(REMOVE_RECURSE
  "CMakeFiles/whatif_traffic.dir/whatif_traffic.cpp.o"
  "CMakeFiles/whatif_traffic.dir/whatif_traffic.cpp.o.d"
  "whatif_traffic"
  "whatif_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
