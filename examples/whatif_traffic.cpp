/**
 * @file
 * What-if traffic exploration: an operator asks how a deployed NF
 * would behave if the traffic mix shifted (more flows, smaller
 * packets, richer payload signatures) without touching production.
 * Tomur's traffic-aware models answer from offline profiles alone.
 */

#include <cstdio>

#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "tomur/profiler.hh"

using namespace tomur;

int
main()
{
    auto rules = regex::defaultRuleSet();
    framework::DeviceSet dev;
    dev.regex = std::make_shared<framework::RegexDevice>(rules);
    dev.compression =
        std::make_shared<framework::CompressionDevice>();
    dev.crypto = std::make_shared<framework::CryptoDevice>();
    sim::Testbed nic(hw::blueField2());
    core::BenchLibrary library(nic, dev, rules);
    core::TomurTrainer trainer(library);

    auto defaults = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeFlowStats();
    std::printf("Training Tomur model for %s...\n",
                nf->name().c_str());
    auto model = trainer.train(*nf, defaults);

    // The NF shares the NIC with a fixed pair of neighbours.
    auto nat = nfs::makeNat();
    auto nids = nfs::makeNids(dev);
    std::vector<core::ContentionLevel> neighbours = {
        trainer.contentionOf(*nat, defaults),
        trainer.contentionOf(*nids, defaults),
    };

    std::printf("\nWhat if the flow count changed? (predicted Kpps "
                "under the current neighbours)\n");
    std::printf("%-12s %14s %14s %10s\n", "flows", "predicted",
                "measured", "error");
    for (double flows : {2e3, 8e3, 16e3, 64e3, 128e3, 256e3, 500e3}) {
        auto p = defaults.withAttribute(
            traffic::Attribute::FlowCount, flows);
        double solo =
            nic.runSolo(trainer.workloadOf(*nf, p)).truthThroughput;
        double pred = model.predict(neighbours, p, solo);
        auto ms = nic.run({trainer.workloadOf(*nf, p),
                           trainer.workloadOf(*nat, defaults),
                           trainer.workloadOf(*nids, defaults)});
        std::printf("%-12.0f %11.1f K  %11.1f K  %8.1f%%\n", flows,
                    pred / 1e3, ms[0].truthThroughput / 1e3,
                    100.0 * std::abs(pred - ms[0].truthThroughput) /
                        ms[0].truthThroughput);
    }
    return 0;
}
