/**
 * @file
 * Bottleneck diagnosis: as traffic match density (MTBR) grows, a
 * regex-offloading NF's bottleneck migrates from the memory
 * subsystem to the regex accelerator (§7.5.2). Tomur's per-resource
 * breakdown pinpoints the shift without any hotspot profiling.
 */

#include <cstdio>

#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "tomur/profiler.hh"
#include "usecases/diagnosis.hh"

using namespace tomur;
using namespace tomur::usecases;

int
main()
{
    auto rules = regex::defaultRuleSet();
    framework::DeviceSet dev;
    dev.regex = std::make_shared<framework::RegexDevice>(rules);
    dev.compression =
        std::make_shared<framework::CompressionDevice>();
    dev.crypto = std::make_shared<framework::CryptoDevice>();
    sim::Testbed nic(hw::blueField2());
    core::BenchLibrary library(nic, dev, rules);
    core::TomurTrainer trainer(library);

    auto defaults = traffic::TrafficProfile::defaults();
    auto nf = nfs::makeFlowMonitor(dev);
    std::printf("Training Tomur model for %s...\n",
                nf->name().c_str());
    auto model = trainer.train(*nf, defaults);

    // Fixed competitors: one memory hog (the bench with the highest
    // measured cache pressure), one regex user.
    const core::BenchLibrary::MemBenchEntry *mem =
        &library.memBenches().front();
    for (const auto &e : library.memBenches()) {
        if (e.config.wssBytes < 12.0 * 1024 * 1024)
            continue; // need real LLC displacement, not just rate
        if (e.level.counters.cacheAccessRate() >
            mem->level.counters.cacheAccessRate()) {
            mem = &e;
        }
    }
    const auto &rx =
        library.accelBench(hw::AccelKind::Regex, 100e3, 800.0);

    std::printf("\n%-8s %14s %14s %16s %16s\n", "MTBR",
                "throughput", "predicted", "truth bottleneck",
                "Tomur diagnosis");
    for (double mtbr = 0; mtbr <= 1100; mtbr += 100) {
        auto p =
            defaults.withAttribute(traffic::Attribute::Mtbr, mtbr);
        const auto &w = trainer.workloadOf(*nf, p);
        auto ms = nic.run(
            {w, mem->workload, mem->workload, rx.workload});
        double solo = nic.runSolo(w).truthThroughput;
        auto breakdown = model.predictDetailed(
            {mem->level, mem->level, rx.level}, p, solo);
        std::printf("%-8.0f %11.1f Kpps %11.1f Kpps %16s %16s\n",
                    mtbr, ms[0].truthThroughput / 1e3,
                    breakdown.predicted / 1e3,
                    resourceName(truthBottleneck(ms[0])),
                    resourceName(tomurDiagnosis(breakdown)));
    }
    return 0;
}
