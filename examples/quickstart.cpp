/**
 * @file
 * Quickstart: predict an NF's throughput before co-locating it.
 *
 * The workflow mirrors the paper's (Appendix F): profile the
 * synthetic benches once, train a Tomur model for the target NF
 * offline, then predict what happens when it shares the NIC with
 * other NFs — and check the prediction against a real deployment.
 */

#include <cstdio>

#include "nfs/registry.hh"
#include "regex/ruleset.hh"
#include "tomur/profiler.hh"

using namespace tomur;

int
main()
{
    // --- Testbed: a BlueField-2-like SmartNIC -------------------
    auto rules = regex::defaultRuleSet();
    framework::DeviceSet dev;
    dev.regex = std::make_shared<framework::RegexDevice>(rules);
    dev.compression =
        std::make_shared<framework::CompressionDevice>();
    dev.crypto = std::make_shared<framework::CryptoDevice>();
    sim::Testbed nic(hw::blueField2());

    // --- One-time offline effort: profile the synthetic benches --
    std::printf("Profiling synthetic benches (one-time)...\n");
    core::BenchLibrary library(nic, dev, rules);
    core::TomurTrainer trainer(library);

    // --- Train a model for the target NF ------------------------
    auto traffic_profile = traffic::TrafficProfile::defaults();
    auto target = nfs::makeFlowMonitor(dev);
    std::printf("Training Tomur model for %s...\n",
                target->name().c_str());
    auto model = trainer.train(*target, traffic_profile);
    std::printf("  detected execution pattern: %s\n",
                framework::patternName(model.pattern()));

    // --- Describe the prospective co-residents ------------------
    auto nids = nfs::makeNids(dev);
    auto flowstats = nfs::makeFlowStats();
    std::vector<core::ContentionLevel> competitors = {
        trainer.contentionOf(*nids, traffic_profile),
        trainer.contentionOf(*flowstats, traffic_profile),
    };

    // --- Predict, then verify against a real deployment ---------
    double solo =
        nic.runSolo(trainer.workloadOf(*target, traffic_profile))
            .truthThroughput;
    double predicted =
        model.predict(competitors, traffic_profile, solo);

    auto measured = nic.run({
        trainer.workloadOf(*target, traffic_profile),
        trainer.workloadOf(*nids, traffic_profile),
        trainer.workloadOf(*flowstats, traffic_profile),
    });

    std::printf("\n%s co-located with NIDS + FlowStats @ %s:\n",
                target->name().c_str(),
                traffic_profile.toString().c_str());
    std::printf("  solo throughput      : %8.1f Kpps\n", solo / 1e3);
    std::printf("  predicted (Tomur)    : %8.1f Kpps\n",
                predicted / 1e3);
    std::printf("  measured             : %8.1f Kpps\n",
                measured[0].throughput / 1e3);
    std::printf("  prediction error     : %8.1f %%\n",
                100.0 *
                    std::abs(predicted - measured[0].throughput) /
                    measured[0].throughput);
    return 0;
}
