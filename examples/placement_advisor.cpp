/**
 * @file
 * Placement advisor: schedule a stream of NF arrivals across a
 * SmartNIC fleet while honouring per-NF SLAs (§7.5.1). Compares the
 * naive strategies with Tomur-guided placement and reports the
 * fleet size and SLA outcome of each.
 */

#include <cstdio>

#include "common/rng.hh"
#include "regex/ruleset.hh"
#include "usecases/placement.hh"

using namespace tomur;
using namespace tomur::usecases;

int
main()
{
    auto rules = regex::defaultRuleSet();
    framework::DeviceSet dev;
    dev.regex = std::make_shared<framework::RegexDevice>(rules);
    dev.compression =
        std::make_shared<framework::CompressionDevice>();
    dev.crypto = std::make_shared<framework::CryptoDevice>();
    sim::Testbed nic(hw::blueField2());
    core::BenchLibrary library(nic, dev, rules);

    std::vector<std::string> mix = {"FlowStats", "IPRouter", "NAT",
                                    "NIDS"};
    std::printf("Training models for the NF mix (one-time)...\n");
    PlacementContext ctx(library, mix,
                         traffic::TrafficProfile::defaults(), 80);

    // A day's worth of tenant NF arrivals with 5-20% SLAs.
    Rng rng(7);
    std::vector<Arrival> arrivals;
    for (int i = 0; i < 32; ++i) {
        Arrival a;
        a.nfName = mix[rng.uniformInt(mix.size())];
        a.profile = traffic::TrafficProfile::defaults();
        a.slaMaxDrop = rng.uniform(0.05, 0.20);
        arrivals.push_back(std::move(a));
    }

    std::printf("\nPlacing %zu NF arrivals:\n", arrivals.size());
    std::printf("%-16s %8s %16s\n", "strategy", "NICs",
                "SLA violations");
    for (auto strat : {Strategy::Monopolization, Strategy::Greedy,
                       Strategy::Slomo, Strategy::Tomur,
                       Strategy::Oracle}) {
        auto out = ctx.place(arrivals, strat);
        std::printf("%-16s %8d %13d (%4.1f%%)\n",
                    strategyName(strat), out.nicsUsed,
                    out.slaViolations, out.violationRate());
    }
    std::printf("\nTomur packs close to the measurement-guided "
                "oracle while keeping violations near zero.\n");
    return 0;
}
